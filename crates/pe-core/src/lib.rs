//! The paper's contribution: energy-efficient printed **sequential SVM**
//! classifier circuits, plus the three state-of-the-art baselines it is
//! evaluated against, and the end-to-end pipeline that reproduces the
//! evaluation (DATE'25, arXiv:2501.16828).
//!
//! # What is in here
//!
//! * [`designs::sequential`] — **ours**: the bespoke sequential One-vs-Rest
//!   SVM of Fig. 1: a ⌈log2 n⌉-bit control counter, hardwired MUX-ROM
//!   coefficient storage, a folded compute engine (m generic multipliers +
//!   one multi-operand adder) computing one support vector per cycle, and a
//!   sequential-argmax voter (two registers + one comparator).
//! * [`designs::parallel`] — baseline \[2\] (Mubarik+, MICRO'20) and \[3\]
//!   (Armeniakos+, TCAD'23): fully-parallel bespoke SVMs, one CSD
//!   constant-multiplier per coefficient, combinational argmax / OvO-vote
//!   voter; \[3\] additionally prunes coefficients to few CSD terms.
//! * [`designs::mlp`] — baseline \[4\] (Armeniakos+, TC'23): a bespoke
//!   parallel quantized MLP.
//! * [`pipeline`] — train → quantize (lowest-precision search) → generate →
//!   **verify bit-exact against the integer golden model** → simulate for
//!   switching activity → STA/area/power → [`report::DesignReport`] with the
//!   paper's six metrics (accuracy, area, power, frequency, latency, energy).
//! * [`engine`] — the shared [`ExperimentEngine`]: a parallel, memoizing
//!   runner for `(dataset × style)` job grids, used by every reproduction
//!   binary, bench and example.
//! * [`report`] — Table-I-shaped rendering plus the derived claims (energy
//!   ratios, accuracy deltas, printed-battery feasibility).
//! * [`ablation`] — the design alternatives §II discusses: OvR vs OvO
//!   storage, MUX-ROM vs crossbar ROM (with ADC cost), and PDK sensitivity.
//!
//! # Quickstart
//!
//! ```no_run
//! use pe_core::pipeline::{run_experiment, RunOptions};
//! use pe_core::styles::DesignStyle;
//! use pe_data::UciProfile;
//!
//! let report = run_experiment(
//!     UciProfile::Cardio,
//!     DesignStyle::SequentialSvm,
//!     &RunOptions::default(),
//! );
//! println!("{}", report.one_line());
//! assert_eq!(report.mismatches, 0); // circuit == golden model, bit for bit
//! ```

pub mod ablation;
pub mod designs;
pub mod engine;
pub mod pipeline;
pub mod report;
pub mod styles;
pub mod sweep;

pub use engine::{ExperimentEngine, Job, NullSink, ProgressSink, ReportSink, StderrProgress};
pub use pipeline::{run_experiment, RunOptions};
pub use report::{DesignReport, Table1};
pub use styles::DesignStyle;
