//! Bespoke parallel quantized MLP — baseline \[4\] (Armeniakos+, TC'23).
//!
//! Two fully-parallel layers of CSD constant multipliers with an integer
//! ReLU + shift re-quantization between them (matching
//! [`QuantizedMlp`] bit for bit), and a combinational argmax voter.
//! Everything is combinational: one (very long) cycle per classification,
//! which is why the printed MLP baselines clock at only a few hertz.
//!
//! Port map: inputs `x0..x{m-1}`; output `class`.

use pe_ml::QuantizedMlp;
use pe_netlist::{Builder, Netlist, Word};
use pe_synth::{adder, cmp, mult, tree};

/// Builds the parallel MLP netlist from a quantized model.
///
/// # Panics
///
/// Panics if the model has fewer than 2 classes.
#[must_use]
pub fn build_parallel_mlp(q: &QuantizedMlp) -> Netlist {
    let n = q.num_classes();
    assert!(n >= 2, "need at least two classes");
    let m = q.w1_q()[0].len();
    let k = q.input_bits() as usize;
    let mut b = Builder::new(format!("par_mlp_{n}c_{m}f"));
    let xs: Vec<Word> = (0..m).map(|i| Word::new(b.input_bus(format!("x{i}"), k), false)).collect();

    // ---- Hidden layer. -----------------------------------------------------
    b.group("layer1");
    let cap_bits = q.hidden_bits() as usize;
    let shift = q.hidden_shift() as usize;
    let hidden: Vec<Word> = q
        .w1_q()
        .iter()
        .zip(q.b1_q())
        .map(|(row, &bias)| {
            let mut terms: Vec<Word> =
                xs.iter().zip(row).map(|(x, &w)| mult::mul_const(&mut b, x, w)).collect();
            let acc = tree::sum_chain(&mut b, &std::mem::take(&mut terms));
            let acc = adder::add_const(&mut b, &acc, bias);
            // ReLU: signed accumulators clamp at zero; already-unsigned
            // accumulators (all-positive weight rows) pass through.
            let rect = if acc.is_signed() { adder::relu(&mut b, &acc) } else { acc };
            // Shift re-quantization (drop `shift` LSBs) with saturation to
            // `cap_bits`, matching `(acc >> shift).min(cap)`.
            requantize(&mut b, &rect, shift, cap_bits)
        })
        .collect();

    // ---- Output layer. -----------------------------------------------------
    b.group("layer2");
    let logits: Vec<Word> = q
        .w2_q()
        .iter()
        .zip(q.b2_q())
        .map(|(row, &bias)| {
            let mut terms: Vec<Word> =
                hidden.iter().zip(row).map(|(h, &w)| mult::mul_const(&mut b, h, w)).collect();
            let acc = tree::sum_chain(&mut b, &std::mem::take(&mut terms));
            adder::add_const(&mut b, &acc, bias)
        })
        .collect();

    // ---- Voter. --------------------------------------------------------------
    b.group("voter");
    let (_, idx) = cmp::max_argmax(&mut b, &logits);
    b.output_bus("class", idx.bits());
    let nl = b.finish();
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Unsigned shift-right by `shift` with saturation to `cap_bits` bits:
/// `min(x >> shift, 2^cap_bits - 1)`. The shift itself is pure wiring; the
/// saturation is an OR over the dropped high bits.
fn requantize(b: &mut Builder, x: &Word, shift: usize, cap_bits: usize) -> Word {
    assert!(!x.is_signed(), "requantize expects an unsigned (post-ReLU) word");
    if shift >= x.width() {
        return Word::new(vec![b.constant(false)], false);
    }
    let shifted: Vec<pe_netlist::NetId> = x.bits()[shift..].to_vec();
    if shifted.len() <= cap_bits {
        return Word::new(shifted, false);
    }
    let (low, high) = shifted.split_at(cap_bits);
    let overflow = cmp::or_reduce(b, high);
    let bits: Vec<pe_netlist::NetId> = low.iter().map(|&n| b.or2(n, overflow)).collect();
    Word::new(bits, false)
}

/// Cycles per classification: the MLP classifies in one (long) cycle.
#[must_use]
pub fn cycles_per_inference() -> u64 {
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_data::{train_test_split, Normalizer, UciProfile};
    use pe_ml::mlp::{Mlp, MlpTrainParams};
    use pe_sim::Simulator;

    fn quantized_mlp() -> (QuantizedMlp, pe_data::Dataset) {
        let d = UciProfile::Cardio.generate(13);
        let (train, test) = train_test_split(&d, 0.2, 13);
        let norm = Normalizer::fit(&train);
        let (train, test) = (norm.apply(&train), norm.apply(&test));
        let sub: Vec<usize> = (0..400).collect();
        let train = train.subset(&sub, "-s");
        let mlp = Mlp::train(
            &train,
            &MlpTrainParams { hidden: 5, epochs: 40, ..MlpTrainParams::default() },
        );
        let q = QuantizedMlp::quantize(&mlp, &train, 4, 5, 6);
        let keep: Vec<usize> = (0..40).collect();
        (q, test.subset(&keep, "-probe"))
    }

    fn classify(sim: &mut Simulator<'_>, x_q: &[i64]) -> i64 {
        for (i, &v) in x_q.iter().enumerate() {
            sim.set_input(&format!("x{i}"), v);
        }
        sim.sample_comb();
        sim.output_unsigned("class")
    }

    #[test]
    fn matches_quantized_mlp_golden() {
        let (q, probe) = quantized_mlp();
        let nl = build_parallel_mlp(&q);
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, x) in probe.features().iter().enumerate() {
            let x_q = q.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q), q.predict_int(&x_q) as i64, "sample {i}");
        }
    }

    #[test]
    fn is_combinational() {
        let (q, _) = quantized_mlp();
        let nl = build_parallel_mlp(&q);
        assert_eq!(nl.num_seq_cells(), 0);
        assert_eq!(cycles_per_inference(), 1);
    }

    #[test]
    fn has_two_layer_groups() {
        let (q, _) = quantized_mlp();
        let nl = build_parallel_mlp(&q);
        let names = nl.group_names();
        assert!(names.iter().any(|n| n == "layer1"));
        assert!(names.iter().any(|n| n == "layer2"));
        assert!(names.iter().any(|n| n == "voter"));
    }

    #[test]
    fn requantize_saturates() {
        // Unit-test the saturating shift against the golden formula.
        let mut b = Builder::new("rq");
        let x = Word::new(b.input_bus("x", 8), false);
        let y = requantize(&mut b, &x, 2, 3);
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for v in 0i64..256 {
            sim.set_input("x", v);
            sim.eval_comb();
            let want = (v >> 2).min(7);
            assert_eq!(sim.output_unsigned("y"), want, "v={v}");
        }
    }

    #[test]
    fn requantize_degenerate_shift() {
        let mut b = Builder::new("rq");
        let x = Word::new(b.input_bus("x", 4), false);
        let y = requantize(&mut b, &x, 10, 3);
        assert_eq!(y.width(), 1); // everything shifted out -> constant 0
        b.output_bus("y", y.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_input("x", 15);
        sim.eval_comb();
        assert_eq!(sim.output_unsigned("y"), 0);
    }
}
