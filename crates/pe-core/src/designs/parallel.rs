//! Fully-parallel bespoke SVMs — baselines \[2\] (exact) and \[3\]
//! (coefficient-approximated).
//!
//! One CSD constant-coefficient multiplier per trained coefficient, one adder
//! tree per classifier, everything combinational: a classification completes
//! in a single (long) cycle. The voter depends on the decomposition:
//!
//! * **OvR** — combinational argmax over the n classifier scores.
//! * **OvO** — each pairwise score's sign casts a vote; per-class popcounts
//!   feed a combinational argmax. This is the structure whose storage and
//!   voter §II calls out as the OvO overhead.
//!
//! Port map: inputs `x0..x{m-1}`; output `class`.

use pe_ml::multiclass::MulticlassScheme;
use pe_ml::QuantizedSvm;
use pe_netlist::{Builder, Netlist, Word};
use pe_synth::{adder, cmp, mult, tree};

/// Builds a fully-parallel SVM netlist (OvR or OvO) from a quantized model.
/// Baseline \[3\] is obtained by passing a model through
/// [`QuantizedSvm::approximate_csd`] first.
///
/// # Panics
///
/// Panics if the model has fewer than 2 classes.
#[must_use]
pub fn build_parallel_svm(q: &QuantizedSvm) -> Netlist {
    let n = q.num_classes();
    assert!(n >= 2, "need at least two classes");
    let m = q.num_features();
    let k = q.input_bits() as usize;
    let style = match q.scheme() {
        MulticlassScheme::OneVsRest => "ovr",
        MulticlassScheme::OneVsOne => "ovo",
    };
    let mut b = Builder::new(format!("par_svm_{style}_{n}c_{m}f"));
    let xs: Vec<Word> = (0..m).map(|i| Word::new(b.input_bus(format!("x{i}"), k), false)).collect();

    // ---- One bespoke datapath per classifier. -----------------------------
    b.group("classifiers");
    let scores: Vec<Word> = q
        .classifiers()
        .iter()
        .map(|c| {
            let mut terms: Vec<Word> =
                xs.iter().zip(&c.weights_q).map(|(x, &w)| mult::mul_const(&mut b, x, w)).collect();
            let sum = tree::sum_chain(&mut b, &std::mem::take(&mut terms));
            adder::add_const(&mut b, &sum, c.bias_q)
        })
        .collect();

    // ---- Voter. -----------------------------------------------------------
    b.group("voter");
    let class = match q.scheme() {
        MulticlassScheme::OneVsRest => {
            let (_, idx) = cmp::max_argmax(&mut b, &scores);
            idx
        }
        MulticlassScheme::OneVsOne => {
            // score > 0 votes for the first class of the pair.
            let zero = Word::constant(&b, 0, 1, false);
            let positive: Vec<pe_netlist::NetId> =
                scores.iter().map(|s| cmp::gt(&mut b, s, &zero)).collect();
            let mut per_class_votes: Vec<Vec<pe_netlist::NetId>> = vec![Vec::new(); n];
            for (bit, &(a, c)) in positive.iter().zip(q.pairs()) {
                per_class_votes[a].push(*bit);
                let nb = b.inv(*bit);
                per_class_votes[c].push(nb);
            }
            let counts: Vec<Word> =
                per_class_votes.iter().map(|bits| tree::popcount(&mut b, bits)).collect();
            let (_, idx) = cmp::max_argmax(&mut b, &counts);
            idx
        }
    };
    b.output_bus("class", class.bits());
    let nl = b.finish();
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Cycles per classification: the parallel designs classify in one cycle.
#[must_use]
pub fn cycles_per_inference() -> u64 {
    1
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_data::{train_test_split, Normalizer, UciProfile};
    use pe_ml::linear::SvmTrainParams;
    use pe_ml::multiclass::SvmModel;
    use pe_sim::Simulator;

    fn quantized(scheme: MulticlassScheme, weight_bits: u32) -> (QuantizedSvm, pe_data::Dataset) {
        let d = UciProfile::Cardio.generate(5);
        let (train, test) = train_test_split(&d, 0.2, 5);
        let norm = Normalizer::fit(&train);
        let (train, test) = (norm.apply(&train), norm.apply(&test));
        let sub: Vec<usize> = (0..300).collect();
        let p = SvmTrainParams { max_epochs: 30, ..SvmTrainParams::default() };
        let m = SvmModel::train(&train.subset(&sub, "-s"), scheme, &p);
        let q = QuantizedSvm::quantize(&m, 6, weight_bits);
        let keep: Vec<usize> = (0..40).collect();
        (q, test.subset(&keep, "-probe"))
    }

    fn classify(sim: &mut Simulator<'_>, x_q: &[i64]) -> i64 {
        for (i, &v) in x_q.iter().enumerate() {
            sim.set_input(&format!("x{i}"), v);
        }
        sim.sample_comb();
        sim.output_unsigned("class")
    }

    #[test]
    fn ovr_parallel_matches_golden() {
        let (q, probe) = quantized(MulticlassScheme::OneVsRest, 7);
        let nl = build_parallel_svm(&q);
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for x in probe.features() {
            let x_q = q.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q), q.predict_int(&x_q) as i64);
        }
    }

    #[test]
    fn ovo_parallel_matches_golden() {
        let (q, probe) = quantized(MulticlassScheme::OneVsOne, 7);
        let nl = build_parallel_svm(&q);
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for x in probe.features() {
            let x_q = q.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q), q.predict_int(&x_q) as i64);
        }
    }

    #[test]
    fn approximated_model_matches_its_own_golden() {
        let (q, probe) = quantized(MulticlassScheme::OneVsOne, 8);
        let approx = q.approximate_csd(2);
        let nl = build_parallel_svm(&approx);
        let mut sim = Simulator::new(&nl).unwrap();
        for x in probe.features() {
            let x_q = approx.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q), approx.predict_int(&x_q) as i64);
        }
    }

    #[test]
    fn approximation_shrinks_the_circuit() {
        let (q, _) = quantized(MulticlassScheme::OneVsOne, 8);
        let full = build_parallel_svm(&q);
        let approx = build_parallel_svm(&q.approximate_csd(2));
        assert!(
            approx.num_cells() < full.num_cells(),
            "approx {} should be smaller than exact {}",
            approx.num_cells(),
            full.num_cells()
        );
    }

    #[test]
    fn parallel_design_is_combinational() {
        let (q, _) = quantized(MulticlassScheme::OneVsOne, 6);
        let nl = build_parallel_svm(&q);
        assert_eq!(nl.num_seq_cells(), 0, "no registers in a parallel design");
        assert_eq!(cycles_per_inference(), 1);
    }

    #[test]
    fn parallel_is_bigger_than_sequential_per_coefficient_count() {
        // The area story of the paper: OvO parallel instantiates hardware per
        // coefficient; the sequential engine is folded.
        let (q_ovo, _) = quantized(MulticlassScheme::OneVsOne, 7);
        let (q_ovr, _) = quantized(MulticlassScheme::OneVsRest, 7);
        let par = build_parallel_svm(&q_ovo);
        let seq = crate::designs::sequential::build_sequential_ovr(&q_ovr);
        // Cardio has only 3 classes (3 OvO pairs), yet the parallel design
        // still instantiates 3 full datapaths at higher input precision.
        assert!(par.num_cells() > seq.num_cells() / 2);
    }
}
