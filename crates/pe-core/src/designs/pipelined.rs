//! Extension: a two-stage **pipelined** sequential SVM.
//!
//! The paper's design computes fetch→multiply→accumulate→compare in one
//! combinational cone per cycle. Inserting a pipeline register between the
//! MUX-ROM storage and the compute engine splits that cone: stage 1 fetches
//! the coefficients of class `c`, stage 2 computes and votes on class `c-1`.
//! The clock period shrinks to the longer of the two stages, at the price of
//! one extra cycle of latency (`n + 1` total) and the pipeline registers'
//! area — the classic throughput-for-latency trade the paper lists as future
//! work for further battery-life gains.
//!
//! Protocol: apply an input sample, clock `n + 1` cycles, read `class`
//! (assert via `valid`). Between samples, either reset or keep the inputs
//! stable for one extra alignment cycle; the bundled tests use reset.

use pe_ml::multiclass::MulticlassScheme;
use pe_ml::QuantizedSvm;
use pe_netlist::{Builder, Netlist, Word};
use pe_synth::seq::{counter_mod, WordReg};
use pe_synth::{cmp, mux, tree};

/// Builds the pipelined sequential OvR SVM.
///
/// # Panics
///
/// Panics if the model is not One-vs-Rest or has fewer than 2 classes.
#[must_use]
pub fn build_pipelined_ovr(q: &QuantizedSvm) -> Netlist {
    assert_eq!(q.scheme(), MulticlassScheme::OneVsRest, "pipelined design is OvR");
    let n = q.num_classes();
    assert!(n >= 2, "need at least two classes");
    let m = q.num_features();
    let k = q.input_bits() as usize;

    let mut b = Builder::new(format!("seq_svm_pipe_{n}c_{m}f"));
    let xs: Vec<Word> = (0..m).map(|i| Word::new(b.input_bus(format!("x{i}"), k), false)).collect();

    b.group("control");
    let ctr = counter_mod(&mut b, n, None);
    let count = ctr.count.clone();

    // ---- Stage 1: fetch. --------------------------------------------------
    b.group("storage");
    let weight_words: Vec<Word> = (0..m)
        .map(|i| {
            let table: Vec<i64> = (0..n).map(|c| q.classifiers()[c].weights_q[i]).collect();
            mux::rom_mux(&mut b, &count, &table)
        })
        .collect();
    let bias_table: Vec<i64> = (0..n).map(|c| q.classifiers()[c].bias_q).collect();
    let bias_word = mux::rom_mux(&mut b, &count, &bias_table);

    // ---- Pipeline registers (weights, bias, class id, first flag). --------
    b.group("pipeline");
    let weight_regs: Vec<Word> = weight_words
        .iter()
        .map(|w| {
            let reg = WordReg::new(&mut b, w.width(), w.is_signed(), None, 0);
            let q_out = reg.q().clone();
            reg.connect(&mut b, w);
            q_out
        })
        .collect();
    let bias_reg = {
        let reg = WordReg::new(&mut b, bias_word.width(), bias_word.is_signed(), None, 0);
        let q_out = reg.q().clone();
        reg.connect(&mut b, &bias_word);
        q_out
    };
    let id_reg = {
        let reg = WordReg::new(&mut b, count.width(), false, None, 0);
        let q_out = reg.q().clone();
        reg.connect(&mut b, &count);
        q_out
    };
    let first_now = cmp::eq_const(&mut b, &count, 0);
    let first_delayed = b.dff(first_now, false);
    let last_delayed = b.dff(ctr.last, false);

    // ---- Stage 2: compute + vote. -----------------------------------------
    b.group("engine");
    let mut terms: Vec<Word> = xs
        .iter()
        .zip(&weight_regs)
        .map(|(x, w)| pe_synth::mult::mul_generic(&mut b, x, w))
        .collect();
    terms.push(bias_reg);
    let score = tree::sum_tree(&mut b, &terms);

    b.group("voter");
    let score_w = score.width();
    let best = WordReg::new(&mut b, score_w, score.is_signed(), None, -(1i64 << (score_w - 1)));
    let challenger_wins = cmp::gt(&mut b, &score, best.q());
    let update = b.or2(first_delayed, challenger_wins);
    let new_best = mux::mux_word(&mut b, best.q(), &score, update);
    best.connect(&mut b, &new_best);

    let best_id = WordReg::new(&mut b, id_reg.width(), false, None, 0);
    let new_id = mux::mux_word(&mut b, best_id.q(), &id_reg, update);
    let class_out = best_id.q().clone();
    best_id.connect(&mut b, &new_id);

    let valid = b.dff(last_delayed, false);
    b.output_bus("class", class_out.bits());
    b.output("valid", valid);
    let nl = b.finish();
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Cycles per classification: `n` support vectors plus one fill cycle.
#[must_use]
pub fn cycles_per_inference(q: &QuantizedSvm) -> u64 {
    q.num_classes() as u64 + 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::designs::sequential;
    use pe_cells::{EgfetLibrary, TechParams};
    use pe_data::{train_test_split, Normalizer, UciProfile};
    use pe_ml::linear::SvmTrainParams;
    use pe_ml::multiclass::SvmModel;
    use pe_sim::Simulator;

    fn quantized(profile: UciProfile) -> (QuantizedSvm, pe_data::Dataset) {
        let d = profile.generate(31);
        let (train, test) = train_test_split(&d, 0.2, 31);
        let norm = Normalizer::fit(&train);
        let (train, test) = (norm.apply(&train), norm.apply(&test));
        let sub: Vec<usize> = (0..train.len().min(350)).collect();
        let p = SvmTrainParams { max_epochs: 35, ..SvmTrainParams::default() };
        let m = SvmModel::train(
            &train.subset(&sub, "-s").quantize_inputs(4),
            MulticlassScheme::OneVsRest,
            &p,
        );
        (QuantizedSvm::quantize(&m, 4, 6), test)
    }

    fn classify(sim: &mut Simulator<'_>, x_q: &[i64], cycles: u64) -> i64 {
        sim.reset();
        for (i, &v) in x_q.iter().enumerate() {
            sim.set_input(&format!("x{i}"), v);
        }
        for _ in 0..cycles {
            sim.tick();
        }
        assert_eq!(sim.output_unsigned("valid"), 1, "valid after n+1 cycles");
        sim.output_unsigned("class")
    }

    #[test]
    fn pipelined_matches_golden_model() {
        let (q, test) = quantized(UciProfile::Cardio);
        let nl = build_pipelined_ovr(&q);
        nl.validate().unwrap();
        let cycles = cycles_per_inference(&q);
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, x) in test.features().iter().take(40).enumerate() {
            let x_q = q.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q, cycles), q.predict_int(&x_q) as i64, "sample {i}");
        }
    }

    #[test]
    fn pipelining_raises_the_clock() {
        let (q, _) = quantized(UciProfile::Cardio);
        let plain = sequential::build_sequential_ovr(&q);
        let piped = build_pipelined_ovr(&q);
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        let t_plain = pe_synth::analyze_timing(&plain, &lib, &tech).unwrap();
        let t_piped = pe_synth::analyze_timing(&piped, &lib, &tech).unwrap();
        assert!(
            t_piped.freq_hz > t_plain.freq_hz,
            "pipelined {:.1} Hz must beat plain {:.1} Hz",
            t_piped.freq_hz,
            t_plain.freq_hz
        );
    }

    #[test]
    fn pipelining_costs_registers_and_a_cycle() {
        let (q, _) = quantized(UciProfile::Cardio);
        let plain = sequential::build_sequential_ovr(&q);
        let piped = build_pipelined_ovr(&q);
        assert!(piped.num_seq_cells() > plain.num_seq_cells());
        assert_eq!(cycles_per_inference(&q), 4); // 3 classes + 1 fill
        assert_eq!(sequential::cycles_per_inference(&q), 3);
    }

    #[test]
    fn six_class_pipelined_verifies() {
        let (q, test) = quantized(UciProfile::Dermatology);
        let nl = build_pipelined_ovr(&q);
        let cycles = cycles_per_inference(&q);
        let mut sim = Simulator::new(&nl).unwrap();
        for x in test.features().iter().take(15) {
            let x_q = q.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q, cycles), q.predict_int(&x_q) as i64);
        }
    }
}
