//! **Ours**: the bespoke sequential One-vs-Rest SVM circuit (Fig. 1 of the
//! paper).
//!
//! Architecture, exactly as §II describes:
//!
//! * **Control** — a ⌈log2 n⌉-bit modulo-`n` counter selects the active
//!   support vector and terminates the multi-cycle classification.
//! * **Storage** — bespoke MUX-based ROMs whose data inputs are hardwired to
//!   the quantized coefficients; the counter drives the select lines. The
//!   builder's constant folding collapses these into the pruned bespoke
//!   structure.
//! * **Compute engine** — `m` *generic* multipliers (the weights change
//!   every cycle, so constant multipliers are impossible) and one
//!   multi-operand adder tree, computing `w_c·x + b_c` for one class per
//!   cycle.
//! * **Voter** — a sequential argmax: a best-score register, a best-class
//!   register and a single comparator. On the first cycle the score loads
//!   unconditionally; afterwards a strictly-greater challenger displaces the
//!   incumbent, so ties resolve to the lower class index, matching
//!   [`QuantizedSvm::predict_int`].
//!
//! Port map: inputs `x0..x{m-1}` (unsigned `input_bits` each); outputs
//! `class` (⌈log2 n⌉ bits) and `valid` (high during the first cycle of the
//! next classification, when the latched result is complete).

use pe_ml::multiclass::MulticlassScheme;
use pe_ml::QuantizedSvm;
use pe_netlist::{Builder, Netlist, Word};
use pe_synth::seq::{counter_mod, WordReg};
use pe_synth::{cmp, mux, tree};

/// Group names used by the generator (the Fig. 1 blocks).
pub const GROUPS: [&str; 4] = ["control", "storage", "engine", "voter"];

/// Builds the sequential OvR SVM netlist from a quantized model.
///
/// # Panics
///
/// Panics if the model is not One-vs-Rest or has fewer than 2 classes.
#[must_use]
pub fn build_sequential_ovr(q: &QuantizedSvm) -> Netlist {
    assert_eq!(
        q.scheme(),
        MulticlassScheme::OneVsRest,
        "the sequential design stores one classifier per class (OvR)"
    );
    let n = q.num_classes();
    assert!(n >= 2, "need at least two classes");
    let m = q.num_features();
    let k = q.input_bits() as usize;

    let mut b = Builder::new(format!("seq_svm_{}c_{}f", n, m));
    // Primary inputs: one unsigned bus per feature, held constant for the
    // n cycles of a classification.
    let xs: Vec<Word> = (0..m).map(|i| Word::new(b.input_bus(format!("x{i}"), k), false)).collect();

    // ---- Control: the modulo-n support-vector counter. -------------------
    b.group("control");
    let ctr = counter_mod(&mut b, n, None);
    let count = ctr.count.clone();

    // ---- Storage: per-feature weight ROMs + bias ROM, counter-addressed. --
    b.group("storage");
    let weight_words: Vec<Word> = (0..m)
        .map(|i| {
            let table: Vec<i64> = (0..n).map(|c| q.classifiers()[c].weights_q[i]).collect();
            mux::rom_mux(&mut b, &count, &table)
        })
        .collect();
    let bias_table: Vec<i64> = (0..n).map(|c| q.classifiers()[c].bias_q).collect();
    let bias_word = mux::rom_mux(&mut b, &count, &bias_table);

    // ---- Compute engine: m generic multipliers + adder tree + bias. ------
    b.group("engine");
    let mut terms: Vec<Word> = xs
        .iter()
        .zip(&weight_words)
        .map(|(x, w)| pe_synth::mult::mul_generic(&mut b, x, w))
        .collect();
    terms.push(bias_word);
    let score = tree::sum_tree(&mut b, &terms);

    // ---- Voter: sequential argmax (two registers + one comparator). ------
    b.group("voter");
    let score_w = score.width();
    let score_signed = score.is_signed();
    // The first-cycle load makes the power-on value irrelevant; the format's
    // minimum is still the natural "no score yet" encoding (all-nonnegative
    // coefficient sets make the score word unsigned, where that minimum is 0).
    let best_reg_init = if score_signed { -(1i64 << (score_w - 1)) } else { 0 };
    let first = cmp::eq_const(&mut b, &count, 0);
    let best = WordReg::new(&mut b, score_w, score_signed, None, best_reg_init);
    let challenger_wins = cmp::gt(&mut b, &score, best.q());
    let update = b.or2(first, challenger_wins);
    // Recirculating-mux registers: q' = update ? new : q. (Equivalent to a
    // clock enable; expressed with a mux because `update` depends on q.)
    let new_best = mux::mux_word(&mut b, best.q(), &score, update);
    best.connect(&mut b, &new_best);

    let id_w = count.width();
    let id_reg = WordReg::new(&mut b, id_w, false, None, 0);
    let new_id = mux::mux_word(&mut b, id_reg.q(), &count, update);
    let class_out = id_reg.q().clone();
    id_reg.connect(&mut b, &new_id);

    // valid: one-cycle-delayed "last" — high while the latched result is the
    // completed classification of the previous n cycles.
    let valid = b.dff(ctr.last, false);

    b.output_bus("class", class_out.bits());
    b.output("valid", valid);
    let nl = b.finish();
    debug_assert!(nl.validate().is_ok());
    nl
}

/// Cycles per classification for this design: one per class.
#[must_use]
pub fn cycles_per_inference(q: &QuantizedSvm) -> u64 {
    q.num_classes() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_data::{train_test_split, Normalizer, UciProfile};
    use pe_ml::linear::SvmTrainParams;
    use pe_ml::multiclass::SvmModel;
    use pe_sim::Simulator;

    fn small_quantized(profile: UciProfile, take: usize) -> (QuantizedSvm, pe_data::Dataset) {
        let d = profile.generate(21);
        let (train, test) = train_test_split(&d, 0.2, 21);
        let norm = Normalizer::fit(&train);
        let (train, test) = (norm.apply(&train), norm.apply(&test));
        let sub: Vec<usize> = (0..train.len().min(400)).collect();
        let train = train.subset(&sub, "-small");
        let p = SvmTrainParams { max_epochs: 40, ..SvmTrainParams::default() };
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &p);
        let q = QuantizedSvm::quantize(&m, 4, 6);
        let keep: Vec<usize> = (0..test.len().min(take)).collect();
        (q, test.subset(&keep, "-probe"))
    }

    /// Drives one sample through the sequential circuit and returns the
    /// predicted class.
    fn classify(sim: &mut Simulator<'_>, x_q: &[i64], n: usize) -> i64 {
        for (i, &v) in x_q.iter().enumerate() {
            sim.set_input(&format!("x{i}"), v);
        }
        for _ in 0..n {
            sim.tick();
        }
        assert_eq!(sim.output_unsigned("valid"), 1, "valid must assert after n cycles");
        sim.output_unsigned("class")
    }

    #[test]
    fn matches_golden_model_bit_exactly() {
        let (q, probe) = small_quantized(UciProfile::Cardio, 60);
        let nl = build_sequential_ovr(&q);
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        let n = q.num_classes();
        for (i, x) in probe.features().iter().enumerate() {
            let x_q = q.quantize_input(x);
            let golden = q.predict_int(&x_q) as i64;
            let circuit = classify(&mut sim, &x_q, n);
            assert_eq!(circuit, golden, "sample {i}");
        }
    }

    #[test]
    fn streams_back_to_back_samples() {
        // No reset between samples: the voter must reload on each first
        // cycle. Feed the same sample set twice and expect identical answers.
        let (q, probe) = small_quantized(UciProfile::Cardio, 10);
        let nl = build_sequential_ovr(&q);
        let mut sim = Simulator::new(&nl).unwrap();
        let n = q.num_classes();
        let first_pass: Vec<i64> =
            probe.features().iter().map(|x| classify(&mut sim, &q.quantize_input(x), n)).collect();
        let second_pass: Vec<i64> =
            probe.features().iter().map(|x| classify(&mut sim, &q.quantize_input(x), n)).collect();
        assert_eq!(first_pass, second_pass);
    }

    #[test]
    fn groups_cover_fig1_blocks() {
        let (q, _) = small_quantized(UciProfile::Cardio, 1);
        let nl = build_sequential_ovr(&q);
        let names = nl.group_names();
        for g in GROUPS {
            assert!(names.iter().any(|n| n == g), "missing group {g}");
        }
        // The compute engine dominates the cell count in a sequential design.
        let by_group = nl.count_by_group();
        let engine_id = names.iter().position(|n| n == "engine").unwrap();
        let engine_cells =
            by_group.iter().find(|(g, _)| g.index() == engine_id).map(|(_, &c)| c).unwrap_or(0);
        assert!(engine_cells > nl.num_cells() / 3, "engine should dominate");
    }

    #[test]
    fn six_class_model_works() {
        let (q, probe) = small_quantized(UciProfile::Dermatology, 25);
        let nl = build_sequential_ovr(&q);
        let mut sim = Simulator::new(&nl).unwrap();
        let n = q.num_classes();
        for x in probe.features().iter() {
            let x_q = q.quantize_input(x);
            assert_eq!(classify(&mut sim, &x_q, n), q.predict_int(&x_q) as i64);
        }
    }

    #[test]
    fn register_count_matches_fig1() {
        // Registers: counter (log2 n) + best score + best id + valid.
        let (q, _) = small_quantized(UciProfile::Cardio, 1);
        let nl = build_sequential_ovr(&q);
        let n = q.num_classes();
        let ctr_bits = (usize::BITS - (n - 1).leading_zeros()) as usize;
        // score register width is design-dependent; just check the total is
        // small (sequential folding!) and at least counter + id + valid.
        let ff = nl.num_seq_cells();
        assert!(ff > ctr_bits + ctr_bits, "too few registers: {ff}");
        assert!(ff <= 64, "a sequential SVM should need only a few dozen FFs, got {ff}");
    }

    #[test]
    #[should_panic(expected = "OvR")]
    fn rejects_ovo_models() {
        let d = UciProfile::Cardio.generate(3);
        let (train, _) = train_test_split(&d, 0.2, 3);
        let train = Normalizer::fit(&train).apply(&train);
        let sub: Vec<usize> = (0..200).collect();
        let p = SvmTrainParams { max_epochs: 10, ..SvmTrainParams::default() };
        let m = SvmModel::train(&train.subset(&sub, "-s"), MulticlassScheme::OneVsOne, &p);
        let q = QuantizedSvm::quantize(&m, 4, 6);
        let _ = build_sequential_ovr(&q);
    }
}
