//! The four design styles of Table I and their per-dataset parameters.

use pe_data::UciProfile;

/// A row-family of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DesignStyle {
    /// **Ours**: sequential bespoke OvR SVM (one support vector per cycle).
    SequentialSvm,
    /// Baseline \[2\]: fully-parallel exact bespoke OvO SVM (MICRO'20).
    ParallelSvm,
    /// Baseline \[3\]: fully-parallel cross-approximated OvO SVM (TCAD'23).
    ApproxParallelSvm,
    /// Baseline \[4\]: bespoke approximate parallel MLP (TC'23).
    ParallelMlp,
}

impl DesignStyle {
    /// All four styles in the paper's presentation order (baselines first).
    #[must_use]
    pub fn all() -> [DesignStyle; 4] {
        [
            DesignStyle::ParallelSvm,
            DesignStyle::ApproxParallelSvm,
            DesignStyle::ParallelMlp,
            DesignStyle::SequentialSvm,
        ]
    }

    /// The label used in Table I.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            DesignStyle::SequentialSvm => "Ours",
            DesignStyle::ParallelSvm => "SVM [2]",
            DesignStyle::ApproxParallelSvm => "SVM [3]*",
            DesignStyle::ParallelMlp => "MLP [4]*",
        }
    }

    /// Whether this style is an approximate model (starred in Table I).
    #[must_use]
    pub fn is_approximate(&self) -> bool {
        matches!(self, DesignStyle::ApproxParallelSvm | DesignStyle::ParallelMlp)
    }
}

/// How coefficient precision is chosen for a style.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WeightPrecision {
    /// A fixed width (the baselines' published settings).
    Fixed(u32),
    /// The paper's procedure: the lowest width within `tolerance` of the
    /// float model's training accuracy.
    Search {
        /// Narrowest candidate width.
        min: u32,
        /// Widest candidate width.
        max: u32,
        /// Allowed accuracy loss versus the float model.
        tolerance: f64,
    },
}

/// MLP architecture settings (baseline \[4\] only).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpArch {
    /// Hidden-layer width.
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// Hidden-activation precision in bits.
    pub hidden_bits: u32,
}

/// Resolved per-style, per-dataset parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StyleParams {
    /// Input activation precision in bits.
    pub input_bits: u32,
    /// Coefficient precision policy.
    pub weight_precision: WeightPrecision,
    /// CSD terms kept per coefficient (baseline \[3\]'s approximation).
    pub csd_terms: Option<usize>,
    /// MLP architecture (baseline \[4\] only).
    pub mlp: Option<MlpArch>,
}

/// The evaluation configuration used throughout this repository.
///
/// Precision regimes mirror the source papers: the fully-parallel baselines
/// train at full precision and quantize to fixed widths (8-bit inputs,
/// 6-bit coefficients); baseline \[3\] additionally prunes coefficients to
/// two CSD terms; the sequential design trains on 4-bit inputs and searches
/// the narrowest coefficient width that retains training accuracy (§II).
#[must_use]
pub fn default_params(style: DesignStyle, profile: UciProfile) -> StyleParams {
    match style {
        DesignStyle::SequentialSvm => StyleParams {
            input_bits: 4,
            weight_precision: WeightPrecision::Search { min: 4, max: 10, tolerance: 0.005 },
            csd_terms: None,
            mlp: None,
        },
        DesignStyle::ParallelSvm => StyleParams {
            input_bits: 8,
            weight_precision: WeightPrecision::Fixed(6),
            csd_terms: None,
            mlp: None,
        },
        DesignStyle::ApproxParallelSvm => StyleParams {
            input_bits: 6,
            weight_precision: WeightPrecision::Fixed(6),
            csd_terms: Some(2),
            mlp: None,
        },
        DesignStyle::ParallelMlp => {
            let (hidden, epochs) = match profile {
                UciProfile::Cardio => (6, 80),
                UciProfile::Dermatology => (12, 150),
                UciProfile::PenDigits => (10, 60),
                UciProfile::RedWine => (4, 60),
                UciProfile::WhiteWine => (4, 50),
            };
            StyleParams {
                input_bits: 4,
                weight_precision: WeightPrecision::Fixed(5),
                csd_terms: None,
                mlp: Some(MlpArch { hidden, epochs, hidden_bits: 6 }),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_match_table1() {
        assert_eq!(DesignStyle::SequentialSvm.label(), "Ours");
        assert_eq!(DesignStyle::ParallelSvm.label(), "SVM [2]");
        assert!(DesignStyle::ApproxParallelSvm.label().ends_with('*'));
        assert!(DesignStyle::ParallelMlp.label().ends_with('*'));
    }

    #[test]
    fn approximate_flags() {
        assert!(!DesignStyle::SequentialSvm.is_approximate());
        assert!(!DesignStyle::ParallelSvm.is_approximate());
        assert!(DesignStyle::ApproxParallelSvm.is_approximate());
        assert!(DesignStyle::ParallelMlp.is_approximate());
    }

    #[test]
    fn ours_searches_baselines_fix() {
        let ours = default_params(DesignStyle::SequentialSvm, UciProfile::Cardio);
        assert!(matches!(ours.weight_precision, WeightPrecision::Search { .. }));
        assert_eq!(ours.input_bits, 4);
        let sota = default_params(DesignStyle::ParallelSvm, UciProfile::Cardio);
        assert!(matches!(sota.weight_precision, WeightPrecision::Fixed(6)));
        assert_eq!(sota.input_bits, 8);
        let approx = default_params(DesignStyle::ApproxParallelSvm, UciProfile::Cardio);
        assert_eq!(approx.csd_terms, Some(2));
    }

    #[test]
    fn mlp_arch_varies_by_dataset() {
        let derm = default_params(DesignStyle::ParallelMlp, UciProfile::Dermatology);
        let rw = default_params(DesignStyle::ParallelMlp, UciProfile::RedWine);
        assert!(derm.mlp.unwrap().hidden > rw.mlp.unwrap().hidden);
        assert!(default_params(DesignStyle::ParallelMlp, UciProfile::PenDigits).mlp.is_some());
    }

    #[test]
    fn all_styles_enumerated_once() {
        let all = DesignStyle::all();
        assert_eq!(all.len(), 4);
        assert_eq!(all[3], DesignStyle::SequentialSvm, "ours is the last row per dataset");
    }
}
