//! Scaling studies: how the sequential-vs-parallel trade-off moves with
//! problem size.
//!
//! Table I samples five datasets; this module sweeps the two structural
//! parameters that actually drive the comparison — the class count `n`
//! (storage & parallel-datapath count scale with `n` or `n²`) and the
//! feature count `m` (engine width) — on controlled synthetic data. These
//! sweeps are the "missing figure" of the 2-page paper: they locate where
//! the sequential design's energy advantage comes from and where it grows.

use crate::designs::{parallel, sequential};
use pe_cells::{EgfetLibrary, TechParams};
use pe_data::synth::{Geometry, SyntheticSpec};
use pe_data::{train_test_split, Normalizer};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::QuantizedSvm;
use pe_sim::Simulator;

/// One point of a scaling sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepPoint {
    /// Number of classes.
    pub n_classes: usize,
    /// Number of features.
    pub n_features: usize,
    /// Sequential design energy per classification, mJ.
    pub seq_energy_mj: f64,
    /// Parallel OvO design energy per classification, mJ.
    pub par_energy_mj: f64,
    /// Sequential area, cm².
    pub seq_area_cm2: f64,
    /// Parallel area, cm².
    pub par_area_cm2: f64,
}

impl SweepPoint {
    /// Energy advantage of the sequential design.
    #[must_use]
    pub fn energy_ratio(&self) -> f64 {
        self.par_energy_mj / self.seq_energy_mj
    }
}

fn spec(n_classes: usize, n_features: usize) -> SyntheticSpec {
    SyntheticSpec {
        name: format!("sweep-{n_classes}c-{n_features}f"),
        n_samples: 900,
        n_features,
        n_classes,
        informative: n_features,
        class_sep: 0.7,
        noise: 0.18,
        label_noise: 0.0,
        class_weights: vec![],
        geometry: Geometry::Blobs,
    }
}

/// Evaluates one `(n_classes, n_features)` point: trains OvR and OvO models,
/// elaborates both designs, simulates `sim_samples` test vectors for
/// activity, and returns measured energies and areas.
///
/// # Panics
///
/// Panics on internal errors (generated designs are acyclic by
/// construction).
#[must_use]
pub fn sweep_point(
    n_classes: usize,
    n_features: usize,
    sim_samples: usize,
    lib: &EgfetLibrary,
    tech: &TechParams,
    seed: u64,
) -> SweepPoint {
    let data = spec(n_classes, n_features).generate(seed);
    let (train, test) = train_test_split(&data, 0.2, seed);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let p = SvmTrainParams { max_epochs: 40, ..SvmTrainParams::default() };
    let ovr = SvmModel::train(&train.quantize_inputs(4), MulticlassScheme::OneVsRest, &p);
    let ovo = SvmModel::train(
        &train.quantize_inputs(8),
        MulticlassScheme::OneVsOne,
        &SvmTrainParams { balance_classes: false, ..p },
    );
    let q_seq = QuantizedSvm::quantize(&ovr, 4, 6);
    let q_par = QuantizedSvm::quantize(&ovo, 8, 6);

    let (seq_energy_mj, seq_area_cm2) = measure(
        &sequential::build_sequential_ovr(&q_seq),
        &q_seq,
        true,
        sim_samples,
        &test,
        lib,
        tech,
    );
    let (par_energy_mj, par_area_cm2) = measure(
        &parallel::build_parallel_svm(&q_par),
        &q_par,
        false,
        sim_samples,
        &test,
        lib,
        tech,
    );
    SweepPoint { n_classes, n_features, seq_energy_mj, par_energy_mj, seq_area_cm2, par_area_cm2 }
}

fn measure(
    nl: &pe_netlist::Netlist,
    q: &QuantizedSvm,
    sequential: bool,
    sim_samples: usize,
    test: &pe_data::Dataset,
    lib: &EgfetLibrary,
    tech: &TechParams,
) -> (f64, f64) {
    // Sweeps always use the default word-parallel batch engine: every point
    // simulates the same sample count, so the ~64x kernel speedup applies to
    // the whole sweep uniformly.
    let mut sim = Simulator::new(nl).expect("acyclic");
    sim.enable_activity();
    let vectors: Vec<Vec<i64>> =
        test.features().iter().take(sim_samples).map(|x| q.quantize_input(x)).collect();
    let cycles_per_vector = if sequential { q.num_classes() as u64 } else { 0 };
    sim.run_batch(&vectors, cycles_per_vector, "class");
    let activity = sim.activity();
    let timing = pe_synth::analyze_timing(nl, lib, tech).expect("acyclic");
    let area = pe_synth::analyze_area(nl, lib);
    let power = pe_synth::analyze_power(nl, lib, tech, &activity, timing.freq_hz).expect("acyclic");
    let cycles = if sequential { q.num_classes() as f64 } else { 1.0 };
    let energy = power.total_mw * cycles * timing.clock_period_ms / 1000.0;
    (energy, area.total_cm2)
}

/// Sweeps the class count at a fixed feature count. Points are evaluated in
/// parallel through the engine's fan-out helper; the result order matches
/// `class_counts` regardless of thread scheduling.
#[must_use]
pub fn class_count_sweep(
    class_counts: &[usize],
    n_features: usize,
    sim_samples: usize,
    lib: &EgfetLibrary,
    tech: &TechParams,
    seed: u64,
) -> Vec<SweepPoint> {
    let threads = crate::engine::default_threads(class_counts.len());
    crate::engine::parallel_map(class_counts, threads, |&n| {
        sweep_point(n, n_features, sim_samples, lib, tech, seed)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advantage_grows_with_class_count() {
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        let points = class_count_sweep(&[3, 8], 8, 12, &lib, &tech, 3);
        assert_eq!(points.len(), 2);
        let small = &points[0];
        let large = &points[1];
        assert!(
            large.energy_ratio() > small.energy_ratio(),
            "ratio at n=8 ({:.2}) must exceed n=3 ({:.2}): OvO hardware grows ~n²",
            large.energy_ratio(),
            small.energy_ratio()
        );
        // Parallel area explodes with n; sequential grows gently (storage
        // only).
        assert!(large.par_area_cm2 / small.par_area_cm2 > 2.0);
        assert!(large.seq_area_cm2 / small.seq_area_cm2 < 2.0);
    }

    #[test]
    fn points_carry_consistent_metadata() {
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        let p = sweep_point(3, 6, 8, &lib, &tech, 11);
        assert_eq!(p.n_classes, 3);
        assert_eq!(p.n_features, 6);
        assert!(p.seq_energy_mj > 0.0 && p.par_energy_mj > 0.0);
        assert!(p.energy_ratio().is_finite());
    }
}
