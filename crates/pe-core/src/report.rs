//! Table-I-shaped reporting and the paper's derived claims.

use crate::styles::DesignStyle;
use pe_cells::Battery;
use std::fmt::Write as _;

/// One row of Table I: a (dataset, design-style) hardware evaluation.
#[derive(Debug, Clone, PartialEq)]
pub struct DesignReport {
    /// Dataset name.
    pub dataset: String,
    /// Design style.
    pub style: DesignStyle,
    /// Test accuracy of the quantized model, percent (Table I "Acc.").
    pub accuracy_pct: f64,
    /// Test accuracy of the float model before quantization, percent.
    pub float_accuracy_pct: f64,
    /// Printed area, cm².
    pub area_cm2: f64,
    /// Total power, mW.
    pub power_mw: f64,
    /// Static component of power, mW.
    pub static_mw: f64,
    /// Dynamic component of power, mW.
    pub dynamic_mw: f64,
    /// Clock frequency, Hz.
    pub freq_hz: f64,
    /// Cycles per classification.
    pub cycles: u64,
    /// Classification latency, ms.
    pub latency_ms: f64,
    /// Energy per classification, mJ.
    pub energy_mj: f64,
    /// Standard-cell instances.
    pub num_cells: usize,
    /// Flip-flop instances.
    pub num_ffs: usize,
    /// Input precision, bits.
    pub input_bits: u32,
    /// Coefficient precision, bits.
    pub weight_bits: u32,
    /// Gate-level-verified sample count.
    pub verified_samples: usize,
    /// Samples where the circuit disagreed with the golden model (must be 0).
    pub mismatches: usize,
    /// Per-group area breakdown (group name, cm²).
    pub group_area_cm2: Vec<(String, f64)>,
    /// Per-group power breakdown (group name, mW).
    pub group_power_mw: Vec<(String, f64)>,
}

impl DesignReport {
    /// A compact single-line summary.
    #[must_use]
    pub fn one_line(&self) -> String {
        format!(
            "{:<12} {:<9} acc={:5.1}%  area={:6.2} cm²  P={:6.2} mW  f={:5.1} Hz  lat={:6.1} ms  E={:6.3} mJ",
            self.dataset,
            self.style.label(),
            self.accuracy_pct,
            self.area_cm2,
            self.power_mw,
            self.freq_hz,
            self.latency_ms,
            self.energy_mj
        )
    }
}

/// A full reproduction of Table I: all datasets × all styles.
#[derive(Debug, Clone, Default)]
pub struct Table1 {
    /// The rows, in insertion order (dataset-major like the paper).
    pub rows: Vec<DesignReport>,
}

impl Table1 {
    /// Appends a row.
    pub fn push(&mut self, row: DesignReport) {
        self.rows.push(row);
    }

    /// Rows for one style.
    #[must_use]
    pub fn style_rows(&self, style: DesignStyle) -> Vec<&DesignReport> {
        self.rows.iter().filter(|r| r.style == style).collect()
    }

    /// The row for a (dataset, style) pair.
    #[must_use]
    pub fn row(&self, dataset: &str, style: DesignStyle) -> Option<&DesignReport> {
        self.rows.iter().find(|r| r.dataset == dataset && r.style == style)
    }

    /// Markdown rendering in the paper's column order.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "| Dataset | Model | Acc. (%) | Area (cm²) | Power (mW) | Freq. (Hz) | Latency (ms) | Energy (mJ) |"
        );
        let _ = writeln!(s, "|---|---|---|---|---|---|---|---|");
        for r in &self.rows {
            let _ = writeln!(
                s,
                "| {} | {} | {:.1} | {:.1} | {:.2} | {:.0} | {:.0} | {:.3} |",
                r.dataset,
                r.style.label(),
                r.accuracy_pct,
                r.area_cm2,
                r.power_mw,
                r.freq_hz,
                r.latency_ms,
                r.energy_mj
            );
        }
        s
    }

    /// Energy improvement of ours over `baseline`, aggregated the way the
    /// paper aggregates: the ratio of *average* energies over the datasets
    /// both styles cover (the paper reports 10.6× over \[2\], 5.4× over
    /// \[3\], 3.46× over \[4\], 6.5× overall — those numbers reproduce
    /// from the paper's own Table I only under this aggregation).
    #[must_use]
    pub fn energy_improvement_over(&self, baseline: DesignStyle) -> Option<f64> {
        let mut base_sum = 0.0;
        let mut ours_sum = 0.0;
        let mut count = 0usize;
        for ours in self.style_rows(DesignStyle::SequentialSvm) {
            if let Some(base) = self.row(&ours.dataset, baseline) {
                base_sum += base.energy_mj;
                ours_sum += ours.energy_mj;
                count += 1;
            }
        }
        if count == 0 || ours_sum <= 0.0 {
            None
        } else {
            Some(base_sum / ours_sum)
        }
    }

    /// Average accuracy delta (percentage points) of ours over `baseline`
    /// (the paper reports +2.02 / +3.13 / +4.38).
    #[must_use]
    pub fn accuracy_delta_over(&self, baseline: DesignStyle) -> Option<f64> {
        let mut deltas = Vec::new();
        for ours in self.style_rows(DesignStyle::SequentialSvm) {
            if let Some(base) = self.row(&ours.dataset, baseline) {
                deltas.push(ours.accuracy_pct - base.accuracy_pct);
            }
        }
        if deltas.is_empty() {
            None
        } else {
            Some(deltas.iter().sum::<f64>() / deltas.len() as f64)
        }
    }

    /// Peak and average power of the sequential designs (the paper: 22.9 mW
    /// peak, 13.58 mW average — both under the Molex 30 mW budget).
    #[must_use]
    pub fn ours_power_profile(&self) -> Option<(f64, f64)> {
        let rows = self.style_rows(DesignStyle::SequentialSvm);
        if rows.is_empty() {
            return None;
        }
        let peak = rows.iter().map(|r| r.power_mw).fold(f64::NEG_INFINITY, f64::max);
        let avg = rows.iter().map(|r| r.power_mw).sum::<f64>() / rows.len() as f64;
        Some((peak, avg))
    }

    /// Average energy of the sequential designs (the paper: 2.46 mJ).
    #[must_use]
    pub fn ours_average_energy(&self) -> Option<f64> {
        let rows = self.style_rows(DesignStyle::SequentialSvm);
        if rows.is_empty() {
            return None;
        }
        Some(rows.iter().map(|r| r.energy_mj).sum::<f64>() / rows.len() as f64)
    }

    /// How many rows of each kind a battery can power.
    #[must_use]
    pub fn battery_feasibility(&self, battery: &Battery) -> BatteryFeasibility {
        let mut ours_ok = 0;
        let mut ours_total = 0;
        let mut sota_ok = 0;
        let mut sota_total = 0;
        for r in &self.rows {
            let ok = r.power_mw <= battery.max_power_mw();
            if r.style == DesignStyle::SequentialSvm {
                ours_total += 1;
                if ok {
                    ours_ok += 1;
                }
            } else {
                sota_total += 1;
                if ok {
                    sota_ok += 1;
                }
            }
        }
        BatteryFeasibility { ours_ok, ours_total, sota_ok, sota_total }
    }
}

/// Battery-budget feasibility counts (the paper: all of ours vs only 4 of
/// the state-of-the-art designs fit the Molex 30 mW budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatteryFeasibility {
    /// Sequential designs within budget.
    pub ours_ok: usize,
    /// Sequential designs total.
    pub ours_total: usize,
    /// Baseline designs within budget.
    pub sota_ok: usize,
    /// Baseline designs total.
    pub sota_total: usize,
}

/// One row of the *paper's* Table I (for paper-vs-measured comparisons in
/// EXPERIMENTS.md).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PaperRow {
    /// Dataset name as used by [`DesignReport::dataset`].
    pub dataset: &'static str,
    /// Style of the row.
    pub style: DesignStyle,
    /// Published accuracy, percent.
    pub acc_pct: f64,
    /// Published area, cm².
    pub area_cm2: f64,
    /// Published power, mW.
    pub power_mw: f64,
    /// Published frequency, Hz.
    pub freq_hz: f64,
    /// Published latency, ms.
    pub latency_ms: f64,
    /// Published energy, mJ.
    pub energy_mj: f64,
}

/// The paper's Table I, transcribed verbatim.
#[must_use]
pub fn paper_table1() -> Vec<PaperRow> {
    use DesignStyle::{ApproxParallelSvm, ParallelMlp, ParallelSvm, SequentialSvm};
    let r = |dataset, style, acc_pct, area_cm2, power_mw, freq_hz, latency_ms, energy_mj| {
        PaperRow { dataset, style, acc_pct, area_cm2, power_mw, freq_hz, latency_ms, energy_mj }
    };
    vec![
        r("Cardio", ParallelSvm, 90.0, 15.1, 57.4, 13.0, 75.0, 4.31),
        r("Cardio", ApproxParallelSvm, 89.0, 17.0, 48.9, 13.0, 75.0, 3.67),
        r("Cardio", ParallelMlp, 87.0, 6.1, 20.8, 5.0, 200.0, 4.16),
        r("Cardio", SequentialSvm, 93.4, 17.1, 17.6, 38.0, 78.0, 1.373),
        r("Dermatology", ParallelSvm, 97.2, 60.4, 182.9, 8.0, 120.0, 21.95),
        r("Dermatology", SequentialSvm, 98.6, 13.9, 14.3, 38.0, 156.0, 2.231),
        r("PenDigits", ParallelSvm, 97.8, 123.8, 364.4, 4.0, 250.0, 91.1),
        r("PenDigits", ApproxParallelSvm, 97.0, 97.0, 183.7, 4.0, 250.0, 45.92),
        r("PenDigits", ParallelMlp, 93.0, 32.7, 99.2, 4.0, 250.0, 24.8),
        r("PenDigits", SequentialSvm, 93.1, 22.9, 22.9, 35.0, 280.0, 6.41),
        r("RedWine", ParallelSvm, 57.0, 23.5, 92.8, 15.0, 66.0, 6.12),
        r("RedWine", ApproxParallelSvm, 56.0, 11.7, 21.3, 15.0, 66.0, 1.41),
        r("RedWine", ParallelMlp, 56.0, 1.1, 3.9, 5.0, 200.0, 0.79),
        r("RedWine", SequentialSvm, 64.0, 6.2, 6.7, 42.0, 144.0, 0.965),
        r("WhiteWine", ParallelSvm, 53.0, 28.3, 112.4, 17.0, 60.0, 6.74),
        r("WhiteWine", ApproxParallelSvm, 52.0, 11.0, 34.7, 17.0, 60.0, 2.08),
        r("WhiteWine", ParallelMlp, 53.0, 6.5, 21.3, 5.0, 200.0, 4.26),
        r("WhiteWine", SequentialSvm, 56.0, 6.0, 6.4, 34.0, 203.0, 1.299),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stub(dataset: &str, style: DesignStyle, power: f64, energy: f64, acc: f64) -> DesignReport {
        DesignReport {
            dataset: dataset.into(),
            style,
            accuracy_pct: acc,
            float_accuracy_pct: acc,
            area_cm2: 10.0,
            power_mw: power,
            static_mw: power / 2.0,
            dynamic_mw: power / 2.0,
            freq_hz: 30.0,
            cycles: 1,
            latency_ms: 33.0,
            energy_mj: energy,
            num_cells: 1000,
            num_ffs: 0,
            input_bits: 4,
            weight_bits: 6,
            verified_samples: 10,
            mismatches: 0,
            group_area_cm2: vec![],
            group_power_mw: vec![],
        }
    }

    #[test]
    fn energy_ratio_and_accuracy_delta() {
        let mut t = Table1::default();
        t.push(stub("A", DesignStyle::ParallelSvm, 60.0, 8.0, 90.0));
        t.push(stub("A", DesignStyle::SequentialSvm, 15.0, 2.0, 92.0));
        t.push(stub("B", DesignStyle::ParallelSvm, 50.0, 12.0, 80.0));
        t.push(stub("B", DesignStyle::SequentialSvm, 10.0, 2.0, 83.0));
        let ratio = t.energy_improvement_over(DesignStyle::ParallelSvm).unwrap();
        assert!((ratio - 5.0).abs() < 1e-9); // (8/2 + 12/2)/2
        let delta = t.accuracy_delta_over(DesignStyle::ParallelSvm).unwrap();
        assert!((delta - 2.5).abs() < 1e-9);
    }

    #[test]
    fn power_profile_and_avg_energy() {
        let mut t = Table1::default();
        t.push(stub("A", DesignStyle::SequentialSvm, 15.0, 2.0, 92.0));
        t.push(stub("B", DesignStyle::SequentialSvm, 25.0, 4.0, 92.0));
        let (peak, avg) = t.ours_power_profile().unwrap();
        assert_eq!(peak, 25.0);
        assert_eq!(avg, 20.0);
        assert_eq!(t.ours_average_energy().unwrap(), 3.0);
    }

    #[test]
    fn battery_feasibility_counts() {
        let mut t = Table1::default();
        t.push(stub("A", DesignStyle::SequentialSvm, 15.0, 2.0, 92.0));
        t.push(stub("A", DesignStyle::ParallelSvm, 60.0, 8.0, 90.0));
        t.push(stub("B", DesignStyle::ParallelMlp, 20.0, 8.0, 88.0));
        let f = t.battery_feasibility(&Battery::molex_30mw());
        assert_eq!(f.ours_ok, 1);
        assert_eq!(f.ours_total, 1);
        assert_eq!(f.sota_ok, 1);
        assert_eq!(f.sota_total, 2);
    }

    #[test]
    fn markdown_has_all_rows_and_columns() {
        let mut t = Table1::default();
        t.push(stub("Cardio", DesignStyle::SequentialSvm, 15.0, 2.0, 92.0));
        let md = t.to_markdown();
        assert!(md.contains("| Cardio | Ours |"));
        assert!(md.contains("Energy (mJ)"));
    }

    #[test]
    fn paper_table_matches_published_claims() {
        let paper = paper_table1();
        assert_eq!(paper.len(), 18);
        // Reconstruct the paper's headline numbers from its own table.
        let mut t = Table1::default();
        for p in &paper {
            t.push(stub(p.dataset, p.style, p.power_mw, p.energy_mj, p.acc_pct));
        }
        let r2 = t.energy_improvement_over(DesignStyle::ParallelSvm).unwrap();
        assert!((r2 - 10.6).abs() < 0.6, "paper says 10.6x over [2], got {r2:.2}");
        let r3 = t.energy_improvement_over(DesignStyle::ApproxParallelSvm).unwrap();
        assert!((r3 - 5.4).abs() < 0.6, "paper says 5.4x over [3], got {r3:.2}");
        let r4 = t.energy_improvement_over(DesignStyle::ParallelMlp).unwrap();
        assert!((r4 - 3.46).abs() < 0.6, "paper says 3.46x over [4], got {r4:.2}");
        let (peak, _avg) = t.ours_power_profile().unwrap();
        assert!((peak - 22.9).abs() < 1e-9);
        let avg_energy = t.ours_average_energy().unwrap();
        assert!((avg_energy - 2.46).abs() < 0.1, "paper says 2.46 mJ, got {avg_energy:.3}");
        // Battery: all 5 of ours within 30 mW; exactly 4 baseline rows fit.
        let f = t.battery_feasibility(&Battery::molex_30mw());
        assert_eq!(f.ours_ok, 5);
        assert_eq!(f.ours_total, 5);
        assert_eq!(f.sota_ok, 4);
    }

    #[test]
    fn one_line_is_informative() {
        let s = stub("Cardio", DesignStyle::SequentialSvm, 15.0, 2.0, 92.0).one_line();
        assert!(s.contains("Cardio"));
        assert!(s.contains("Ours"));
        assert!(s.contains("mJ"));
    }
}
