//! Circuit generators for every design style in Table I.

pub mod mlp;
pub mod parallel;
pub mod pipelined;
pub mod sequential;
