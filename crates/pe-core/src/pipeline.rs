//! The end-to-end evaluation pipeline: train → quantize → generate →
//! verify → simulate → analyze.
//!
//! [`run_experiment`] reproduces one cell-row of the paper's Table I: it
//! trains the style's model on a synthetic UCI-shaped dataset under the
//! paper's protocol (normalized `[0,1]` inputs, random 80/20 split), applies
//! the style's quantization policy, elaborates the bespoke netlist, checks
//! the netlist **bit-exactly** against the integer golden model on test
//! samples while collecting real switching activity, and runs the
//! STA/area/power flow to produce the six metrics the paper reports.

use crate::designs;
use crate::report::DesignReport;
use crate::styles::{default_params, DesignStyle, WeightPrecision};
use pe_cells::{EgfetLibrary, TechParams};
use pe_data::{train_test_split, Dataset, Normalizer, UciProfile};
use pe_fixed::search::{search_lowest_width, SearchSpec};
use pe_ml::linear::SvmTrainParams;
use pe_ml::mlp::{Mlp, MlpTrainParams};
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::{QuantizedMlp, QuantizedSvm};
use pe_netlist::Netlist;
use pe_sim::{BatchMode, LaneWidth, Simulator};

/// Options shared by all experiments.
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Master seed (dataset generation, splits, training shuffles).
    pub seed: u64,
    /// Held-out fraction (the paper uses 0.2).
    pub test_fraction: f64,
    /// How many test samples to drive through the gate-level simulator for
    /// verification and activity extraction (accuracy itself is computed on
    /// the full test set with the integer golden model).
    pub max_sim_samples: usize,
    /// The cell library.
    pub lib: EgfetLibrary,
    /// Technology parameters.
    pub tech: TechParams,
    /// Which engine runs the gate-level verification/activity batch. The
    /// word-parallel bit-sliced engine is the default; the scalar reference
    /// is selectable so whole-pipeline runs can be differentially checked.
    pub batch_mode: BatchMode,
    /// Slab width for the bit-sliced engine: how many 64-lane words each
    /// net's packed value spans (64–512 vectors per topological sweep).
    /// `None` picks a per-model default from the netlist size
    /// ([`LaneWidth::auto_for_netlist`]); `Some` forces a width.
    pub lane_width: Option<LaneWidth>,
    /// Event-driven sweeps for the bit-sliced engine: only re-evaluate cells
    /// whose input slabs changed ([`pe_sim::Simulator::set_event_driven`]).
    /// Bit-identical to full sweeps; pays off on low-activity batches.
    pub event_driven: bool,
}

impl Default for RunOptions {
    fn default() -> Self {
        RunOptions {
            seed: 7,
            test_fraction: 0.2,
            max_sim_samples: 120,
            lib: EgfetLibrary::standard(),
            tech: TechParams::standard(),
            batch_mode: BatchMode::default(),
            lane_width: None,
            event_driven: false,
        }
    }
}

/// The trained-and-quantized model for one style (exposed so examples can
/// inspect coefficients or reuse models across analyses).
#[derive(Debug, Clone)]
pub enum PreparedModel {
    /// A quantized SVM (sequential or parallel styles).
    Svm(QuantizedSvm),
    /// A quantized MLP (baseline \[4\]).
    Mlp(QuantizedMlp),
}

/// Everything produced before hardware generation.
#[derive(Debug, Clone)]
pub struct Prepared {
    /// The quantized model.
    pub model: PreparedModel,
    /// Float-model test accuracy (reference point).
    pub float_accuracy: f64,
    /// Integer-model test accuracy (what Table I reports).
    pub quant_accuracy: f64,
    /// The coefficient width actually used.
    pub weight_bits: u32,
    /// The input width actually used.
    pub input_bits: u32,
    /// The normalized test set.
    pub test: Dataset,
}

/// Trains and quantizes the model for `(profile, style)` under the paper's
/// protocol. Exposed separately from [`run_experiment`] so callers can
/// reuse the expensive training step.
#[must_use]
pub fn prepare_model(profile: UciProfile, style: DesignStyle, opts: &RunOptions) -> Prepared {
    let params = default_params(style, profile);
    let data = profile.generate(opts.seed);
    let (train, test) = train_test_split(&data, opts.test_fraction, opts.seed);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    // The paper trains with low-precision inputs: snap the training set to
    // the style's input grid.
    let train_q = train.quantize_inputs(params.input_bits);

    match style {
        DesignStyle::ParallelMlp => {
            let arch = params.mlp.expect("MLP style has an architecture");
            let mlp = Mlp::train(
                &train_q,
                &MlpTrainParams {
                    hidden: arch.hidden,
                    epochs: arch.epochs,
                    seed: opts.seed ^ 0x4d4c50,
                    ..MlpTrainParams::default()
                },
            );
            let float_accuracy = mlp.accuracy(&test);
            let weight_bits = match params.weight_precision {
                WeightPrecision::Fixed(w) => w,
                WeightPrecision::Search { max, .. } => max,
            };
            let q = QuantizedMlp::quantize(
                &mlp,
                &train_q,
                params.input_bits,
                weight_bits,
                arch.hidden_bits,
            );
            let quant_accuracy = q.accuracy(&test);
            Prepared {
                model: PreparedModel::Mlp(q),
                float_accuracy,
                quant_accuracy,
                weight_bits,
                input_bits: params.input_bits,
                test,
            }
        }
        _ => {
            let scheme = if style == DesignStyle::SequentialSvm {
                MulticlassScheme::OneVsRest
            } else {
                MulticlassScheme::OneVsOne
            };
            // The baselines replicate their published flows (sklearn-default
            // unweighted training). The paper's own models are trained more
            // carefully: for OvR we fit both class-rebalanced and unweighted
            // variants and keep whichever fits the training set better
            // (rebalancing rescues heavily imbalanced OvR subproblems such
            // as WhiteWine's rare quality grades, but over-boosts minority
            // classes on Cardio).
            let model = if scheme == MulticlassScheme::OneVsRest {
                let balanced = SvmModel::train(
                    &train_q,
                    scheme,
                    &SvmTrainParams {
                        seed: opts.seed ^ 0x53564d,
                        balance_classes: true,
                        ..SvmTrainParams::default()
                    },
                );
                let unweighted = SvmModel::train(
                    &train_q,
                    scheme,
                    &SvmTrainParams {
                        seed: opts.seed ^ 0x53564d,
                        balance_classes: false,
                        ..SvmTrainParams::default()
                    },
                );
                if balanced.accuracy(&train_q) >= unweighted.accuracy(&train_q) {
                    balanced
                } else {
                    unweighted
                }
            } else {
                SvmModel::train(
                    &train_q,
                    scheme,
                    &SvmTrainParams {
                        seed: opts.seed ^ 0x53564d,
                        balance_classes: false,
                        ..SvmTrainParams::default()
                    },
                )
            };
            let float_accuracy = model.accuracy(&test);
            let (weight_bits, q) = match params.weight_precision {
                WeightPrecision::Fixed(w) => {
                    (w, QuantizedSvm::quantize(&model, params.input_bits, w))
                }
                WeightPrecision::Search { min, max, tolerance } => {
                    // §II: "quantize ... to the lowest precision that can
                    // retain acceptable accuracy" — judged on training data.
                    let reference = model.accuracy(&train_q);
                    let spec = SearchSpec::new(min, max, tolerance, reference);
                    // Candidate widths are independent, so quantize-and-score
                    // them in parallel, then replay the serial early-exit scan
                    // against the precomputed table: the chosen width and the
                    // outcome trace stay bit-identical to a serial search.
                    // With one worker the eager evaluation would only waste
                    // the scan's early exit, so fall back to the lazy scan.
                    let score =
                        |w| QuantizedSvm::quantize(&model, params.input_bits, w).accuracy(&train_q);
                    let widths: Vec<u32> = (min..=max).collect();
                    let threads = crate::engine::default_threads(widths.len());
                    let outcome = if threads <= 1 {
                        search_lowest_width(spec, score)
                    } else {
                        let accuracies =
                            crate::engine::parallel_map(&widths, threads, |&w| score(w));
                        search_lowest_width(spec, |w| accuracies[(w - min) as usize])
                    };
                    (
                        outcome.width,
                        QuantizedSvm::quantize(&model, params.input_bits, outcome.width),
                    )
                }
            };
            let q = match params.csd_terms {
                Some(terms) => q.approximate_csd(terms),
                None => q,
            };
            let quant_accuracy = q.accuracy(&test);
            Prepared {
                model: PreparedModel::Svm(q),
                float_accuracy,
                quant_accuracy,
                weight_bits,
                input_bits: params.input_bits,
                test,
            }
        }
    }
}

/// Elaborates the netlist for a prepared model.
#[must_use]
pub fn build_netlist(style: DesignStyle, prepared: &Prepared) -> Netlist {
    match (&prepared.model, style) {
        (PreparedModel::Svm(q), DesignStyle::SequentialSvm) => {
            designs::sequential::build_sequential_ovr(q)
        }
        (PreparedModel::Svm(q), _) => designs::parallel::build_parallel_svm(q),
        (PreparedModel::Mlp(q), _) => designs::mlp::build_parallel_mlp(q),
    }
}

/// Builds a port-named fault-campaign workload from the first `n` test
/// samples of a prepared model: each entry quantizes one sample onto the
/// model's input grid and names the `x{i}` input ports the generated
/// datapaths use — the format `pe_sim::faults` campaigns drive.
#[must_use]
pub fn fault_workload(prepared: &Prepared, n: usize) -> Vec<Vec<(String, i64)>> {
    prepared
        .test
        .features()
        .iter()
        .take(n)
        .map(|x| {
            let xq = match &prepared.model {
                PreparedModel::Svm(q) => q.quantize_input(x),
                PreparedModel::Mlp(q) => q.quantize_input(x),
            };
            xq.iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect()
}

/// Cycles one classification occupies: `n` for the sequential design (one
/// support vector per cycle), 1 for every parallel design.
#[must_use]
pub fn cycles_per_inference(style: DesignStyle, prepared: &Prepared) -> u64 {
    match (style, &prepared.model) {
        (DesignStyle::SequentialSvm, PreparedModel::Svm(q)) => q.num_classes() as u64,
        (DesignStyle::SequentialSvm, PreparedModel::Mlp(_)) => {
            unreachable!("the sequential style always prepares an SVM")
        }
        _ => 1,
    }
}

/// Runs one full Table-I cell-row: see the [module docs](self).
///
/// This is the canonical single-job entry point; grid runs go through
/// [`crate::engine::ExperimentEngine`], which reuses [`prepare_model`]
/// results across jobs and calls [`run_prepared`] with the memoized model.
///
/// # Panics
///
/// Panics if the generated circuit cannot be scheduled (would indicate an
/// internal bug; generated designs are acyclic by construction).
#[must_use]
pub fn run_experiment(profile: UciProfile, style: DesignStyle, opts: &RunOptions) -> DesignReport {
    let prepared = prepare_model(profile, style, opts);
    run_prepared(profile, style, &prepared, opts)
}

/// The hardware half of [`run_experiment`]: elaborate, verify, simulate and
/// analyze an already-prepared model. Exposed so the engine (and analyses
/// that sweep PDK variants) can reuse one trained model across runs.
///
/// # Panics
///
/// Panics if the generated circuit cannot be scheduled (would indicate an
/// internal bug; generated designs are acyclic by construction).
#[must_use]
pub fn run_prepared(
    profile: UciProfile,
    style: DesignStyle,
    prepared: &Prepared,
    opts: &RunOptions,
) -> DesignReport {
    let nl = build_netlist(style, prepared);
    let cycles = cycles_per_inference(style, prepared);

    // Gate-level verification + activity extraction over test samples, in
    // one batched simulator call.
    let n_sim = prepared.test.len().min(opts.max_sim_samples);
    let mut vectors = Vec::with_capacity(n_sim);
    let mut goldens = Vec::with_capacity(n_sim);
    for i in 0..n_sim {
        let (x, _) = prepared.test.sample(i);
        let (x_q, golden) = match &prepared.model {
            PreparedModel::Svm(q) => {
                let xq = q.quantize_input(x);
                let g = q.predict_int(&xq);
                (xq, g)
            }
            PreparedModel::Mlp(q) => {
                let xq = q.quantize_input(x);
                let g = q.predict_int(&xq);
                (xq, g)
            }
        };
        vectors.push(x_q);
        goldens.push(golden);
    }
    let mut sim = Simulator::new(&nl).expect("generated designs are acyclic");
    sim.set_batch_mode(opts.batch_mode);
    sim.set_lane_width(opts.lane_width.unwrap_or_else(|| LaneWidth::auto_for_netlist(&nl)));
    sim.set_event_driven(opts.event_driven);
    sim.enable_activity();
    let cycles_per_vector = if style == DesignStyle::SequentialSvm { cycles } else { 0 };
    let batch = sim.run_batch(&vectors, cycles_per_vector, "class");
    let verified = batch.outputs.len();
    let mismatches =
        batch.outputs.iter().zip(&goldens).filter(|(&got, &want)| got as usize != want).count();
    let activity = sim.activity();

    let timing = pe_synth::analyze_timing(&nl, &opts.lib, &opts.tech)
        .expect("generated designs are acyclic");
    let area = pe_synth::analyze_area(&nl, &opts.lib);
    let power = pe_synth::analyze_power(&nl, &opts.lib, &opts.tech, &activity, timing.freq_hz)
        .expect("generated designs are acyclic");

    let latency_ms = cycles as f64 * timing.clock_period_ms;
    // mW × ms = µJ; report mJ.
    let energy_mj = power.total_mw * latency_ms / 1000.0;
    DesignReport {
        dataset: profile.name().to_owned(),
        style,
        accuracy_pct: prepared.quant_accuracy * 100.0,
        float_accuracy_pct: prepared.float_accuracy * 100.0,
        area_cm2: area.total_cm2,
        power_mw: power.total_mw,
        static_mw: power.static_mw,
        dynamic_mw: power.dynamic_mw,
        freq_hz: timing.freq_hz,
        cycles,
        latency_ms,
        energy_mj,
        num_cells: nl.num_cells(),
        num_ffs: nl.num_seq_cells(),
        input_bits: prepared.input_bits,
        weight_bits: prepared.weight_bits,
        verified_samples: verified,
        mismatches,
        group_area_cm2: area.by_group.clone(),
        group_power_mw: power.by_group.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_opts() -> RunOptions {
        RunOptions { max_sim_samples: 25, ..RunOptions::default() }
    }

    #[test]
    fn sequential_cardio_end_to_end() {
        let r = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        assert_eq!(r.mismatches, 0, "circuit must match the golden model");
        assert_eq!(r.verified_samples, 25);
        assert_eq!(r.cycles, 3, "Cardio has 3 classes -> 3 cycles");
        assert!(r.accuracy_pct > 70.0, "accuracy {}", r.accuracy_pct);
        assert!(r.area_cm2 > 0.5 && r.area_cm2 < 100.0, "area {}", r.area_cm2);
        assert!(r.freq_hz > 1.0 && r.freq_hz < 1000.0, "freq {}", r.freq_hz);
        assert!(r.energy_mj > 0.0);
        assert!((r.latency_ms - 3.0 * 1000.0 / r.freq_hz).abs() < 1e-6);
    }

    #[test]
    fn parallel_cardio_end_to_end() {
        let r = run_experiment(UciProfile::Cardio, DesignStyle::ParallelSvm, &fast_opts());
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.cycles, 1);
        assert_eq!(r.num_ffs, 0);
        assert!(r.accuracy_pct > 65.0);
    }

    #[test]
    fn approx_is_smaller_than_exact() {
        let exact = run_experiment(UciProfile::Cardio, DesignStyle::ParallelSvm, &fast_opts());
        let approx =
            run_experiment(UciProfile::Cardio, DesignStyle::ApproxParallelSvm, &fast_opts());
        assert_eq!(approx.mismatches, 0);
        assert!(approx.area_cm2 < exact.area_cm2);
        assert!(approx.accuracy_pct <= exact.accuracy_pct + 2.0);
    }

    #[test]
    fn mlp_cardio_end_to_end() {
        let r = run_experiment(UciProfile::Cardio, DesignStyle::ParallelMlp, &fast_opts());
        assert_eq!(r.mismatches, 0);
        assert_eq!(r.cycles, 1);
        assert!(r.accuracy_pct > 60.0, "MLP accuracy {}", r.accuracy_pct);
    }

    #[test]
    fn reports_are_deterministic() {
        let a = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        let b = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        assert_eq!(a.accuracy_pct, b.accuracy_pct);
        assert_eq!(a.area_cm2, b.area_cm2);
        assert_eq!(a.energy_mj, b.energy_mj);
    }

    #[test]
    fn precision_search_is_deterministic_under_parallel_evaluation() {
        // The candidate widths are scored on worker threads; the replayed
        // early-exit scan must make the outcome independent of scheduling.
        let a = prepare_model(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        let b = prepare_model(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        assert_eq!(a.weight_bits, b.weight_bits);
        assert_eq!(a.quant_accuracy, b.quant_accuracy);
        match (&a.model, &b.model) {
            (PreparedModel::Svm(qa), PreparedModel::Svm(qb)) => assert_eq!(qa, qb),
            _ => panic!("the sequential style always prepares an SVM"),
        }
    }

    #[test]
    fn scalar_and_bitsliced_engines_agree_end_to_end() {
        // System-level differential check: the whole Table-I cell must come
        // out bit-identical whichever batch engine simulates it, energy
        // included (energy is a pure function of the toggle counts).
        let sliced = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        let scalar = run_experiment(
            UciProfile::Cardio,
            DesignStyle::SequentialSvm,
            &RunOptions { batch_mode: pe_sim::BatchMode::Scalar, ..fast_opts() },
        );
        assert_eq!(sliced.mismatches, scalar.mismatches);
        assert_eq!(sliced.accuracy_pct, scalar.accuracy_pct);
        assert_eq!(sliced.dynamic_mw, scalar.dynamic_mw);
        assert_eq!(sliced.power_mw, scalar.power_mw);
        assert_eq!(sliced.energy_mj, scalar.energy_mj);
    }

    #[test]
    fn wide_lanes_agree_with_scalar_end_to_end() {
        // Same differential check at an explicit wide slab: the sequential
        // chunk size (64·W vectors) is part of the batch contract, so both
        // engines must be pinned to the same width to compare energies.
        let wide = run_experiment(
            UciProfile::Cardio,
            DesignStyle::SequentialSvm,
            &RunOptions { lane_width: Some(LaneWidth::W4), ..fast_opts() },
        );
        let scalar = run_experiment(
            UciProfile::Cardio,
            DesignStyle::SequentialSvm,
            &RunOptions {
                batch_mode: pe_sim::BatchMode::Scalar,
                lane_width: Some(LaneWidth::W4),
                ..fast_opts()
            },
        );
        assert_eq!(wide.mismatches, 0);
        assert_eq!(wide.accuracy_pct, scalar.accuracy_pct);
        assert_eq!(wide.dynamic_mw, scalar.dynamic_mw);
        assert_eq!(wide.energy_mj, scalar.energy_mj);
    }

    #[test]
    fn sequential_beats_parallel_on_energy() {
        // The headline claim, on the smallest dataset for test speed.
        let ours = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
        let sota = run_experiment(UciProfile::Cardio, DesignStyle::ParallelSvm, &fast_opts());
        assert!(
            ours.energy_mj < sota.energy_mj,
            "ours {} mJ vs [2] {} mJ",
            ours.energy_mj,
            sota.energy_mj
        );
    }
}
