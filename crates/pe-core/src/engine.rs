//! The shared experiment engine: one place that runs `(dataset × style)`
//! job grids for every binary, bench and example in the workspace.
//!
//! The paper's evaluation is a grid — five datasets by four design styles —
//! and each cell runs the same train → quantize → elaborate → verify →
//! analyze pipeline. Before this module existed, every driver re-implemented
//! that loop serially. [`ExperimentEngine`] centralizes it:
//!
//! * **Job grid** — an ordered list of [`Job`]s; [`ExperimentEngine::table1_grid`]
//!   builds the paper's full 5 × 4 grid in Table-I order.
//! * **Model memoization** — [`prepare_model`] (training + precision search)
//!   is the expensive stage and depends only on `(profile, style, seed,
//!   test_fraction)`, never on the PDK. The engine trains each pair exactly
//!   once, so netlist/simulation/STA variants (PDK ablations, battery
//!   studies) reuse one trained model.
//! * **Parallelism** — jobs run on `std::thread::scope` workers. Every job is
//!   a pure function of the engine's options, and results are collected by
//!   job index, so the produced [`Table1`] is **bit-identical regardless of
//!   thread count or scheduling**.
//! * **Streaming** — completed [`DesignReport`]s are pushed through a
//!   [`ReportSink`] as they finish (progress display, incremental logging),
//!   while the final table stays in grid order.
//! * **Word-parallel simulation** — each job's gate-level verify/activity
//!   batch runs on the bit-sliced engine (64 test vectors per machine word,
//!   see `pe_sim::bitslice`) selected by
//!   [`RunOptions::batch_mode`](crate::pipeline::RunOptions); grids can be
//!   differentially re-run on the scalar reference engine by flipping that
//!   option.
//!
//! # Example
//!
//! ```no_run
//! use pe_core::engine::ExperimentEngine;
//! use pe_core::pipeline::RunOptions;
//!
//! let engine = ExperimentEngine::table1_grid(RunOptions::default()).with_threads(4);
//! let table = engine.run();
//! println!("{}", table.to_markdown());
//! ```

use crate::pipeline::{prepare_model, run_prepared, Prepared, RunOptions};
use crate::report::{DesignReport, Table1};
use crate::styles::DesignStyle;
use pe_cells::{EgfetLibrary, TechParams};
use pe_data::UciProfile;
use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// One cell of the evaluation grid.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Job {
    /// Dataset profile.
    pub profile: UciProfile,
    /// Design style.
    pub style: DesignStyle,
}

impl Job {
    /// Creates a job.
    #[must_use]
    pub fn new(profile: UciProfile, style: DesignStyle) -> Self {
        Job { profile, style }
    }
}

/// Observer for reports as they complete (completion order, not grid order).
///
/// Implementations must tolerate being called from worker threads; the
/// engine serializes calls through a mutex.
pub trait ReportSink: Send {
    /// Called once per finished job.
    fn on_report(&mut self, job: Job, report: &DesignReport);
}

/// Line-oriented progress events from long-running stages.
///
/// [`ReportSink`] is the engine-specific observer (it sees whole
/// [`DesignReport`]s); this is the lowest-common-denominator interface
/// shared with non-engine callers — the serving-path model registry warms
/// models through it, campaign drivers narrate sweeps — so every driver
/// reuses one progress printer instead of rolling its own.
pub trait ProgressSink: Send {
    /// Called with one human-readable line per completed step.
    fn note(&mut self, line: &str);
}

/// A sink that drops every report (the default for [`ExperimentEngine::run`]).
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl ReportSink for NullSink {
    fn on_report(&mut self, _job: Job, _report: &DesignReport) {}
}

impl ProgressSink for NullSink {
    fn note(&mut self, _line: &str) {}
}

/// A sink that prints each finished step to stderr — the progress style the
/// reproduction binaries and the serving front end share.
#[derive(Debug, Default, Clone, Copy)]
pub struct StderrProgress;

impl ProgressSink for StderrProgress {
    fn note(&mut self, line: &str) {
        eprintln!("  {line}");
    }
}

impl ReportSink for StderrProgress {
    fn on_report(&mut self, _job: Job, report: &DesignReport) {
        self.note(&format!("done: {}", report.one_line()));
    }
}

/// Memoization table for [`prepare_model`] results, keyed by
/// `(profile, style)`. Safe for concurrent use; each pair trains exactly
/// once even when several workers request it simultaneously.
#[derive(Debug, Default)]
struct ModelCache {
    entries: Mutex<HashMap<Job, Arc<OnceLock<Arc<Prepared>>>>>,
    trainings: AtomicUsize,
}

impl ModelCache {
    fn get_or_train(&self, job: Job, opts: &RunOptions) -> Arc<Prepared> {
        let slot = {
            let mut map = self.entries.lock().expect("model cache poisoned");
            Arc::clone(map.entry(job).or_default())
        };
        // Train outside the map lock; OnceLock serializes per-key so other
        // (profile, style) pairs keep training in parallel.
        Arc::clone(slot.get_or_init(|| {
            self.trainings.fetch_add(1, Ordering::Relaxed);
            Arc::new(prepare_model(job.profile, job.style, opts))
        }))
    }
}

/// The shared parallel evaluation engine. See the [module docs](self).
#[derive(Debug)]
pub struct ExperimentEngine {
    jobs: Vec<Job>,
    opts: RunOptions,
    threads: usize,
    cache: ModelCache,
}

impl ExperimentEngine {
    /// An engine over an explicit job list (kept in the given order).
    #[must_use]
    pub fn new(jobs: Vec<Job>, opts: RunOptions) -> Self {
        let threads = default_threads(jobs.len());
        ExperimentEngine { jobs, opts, threads, cache: ModelCache::default() }
    }

    /// The paper's full Table-I grid: five datasets × four styles, dataset-
    /// major with the baselines first (the paper's row order).
    #[must_use]
    pub fn table1_grid(opts: RunOptions) -> Self {
        let jobs = UciProfile::all()
            .into_iter()
            .flat_map(|p| DesignStyle::all().into_iter().map(move |s| Job::new(p, s)))
            .collect();
        Self::new(jobs, opts)
    }

    /// A single-cell engine (quickstart-style runs).
    #[must_use]
    pub fn single(profile: UciProfile, style: DesignStyle, opts: RunOptions) -> Self {
        Self::new(vec![Job::new(profile, style)], opts)
    }

    /// Sets the worker-thread count (clamped to at least 1). The produced
    /// table is identical for every value; this only changes wall-clock.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The configured worker-thread count.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// The job grid, in run order.
    #[must_use]
    pub fn jobs(&self) -> &[Job] {
        &self.jobs
    }

    /// The shared run options.
    #[must_use]
    pub fn options(&self) -> &RunOptions {
        &self.opts
    }

    /// The memoized trained model for a grid cell (training it on first
    /// request). Ablations use this to analyze model variants without
    /// retraining.
    #[must_use]
    pub fn prepared(&self, profile: UciProfile, style: DesignStyle) -> Arc<Prepared> {
        self.cache.get_or_train(Job::new(profile, style), &self.opts)
    }

    /// How many times [`prepare_model`] actually ran (for memoization tests
    /// and cost accounting).
    #[must_use]
    pub fn trainings(&self) -> usize {
        self.cache.trainings.load(Ordering::Relaxed)
    }

    /// Runs the whole grid and returns the table in grid order.
    #[must_use]
    pub fn run(&self) -> Table1 {
        self.run_streaming(&mut NullSink)
    }

    /// Runs the whole grid, streaming each finished report through `sink`
    /// (in completion order) and returning the table in grid order.
    pub fn run_streaming(&self, sink: &mut dyn ReportSink) -> Table1 {
        self.run_inner(sink, &self.opts)
    }

    /// Runs the grid under a different PDK calibration while **reusing the
    /// memoized trained models** — the engine behind PDK-sensitivity
    /// ablations, where only the hardware half of the pipeline changes.
    #[must_use]
    pub fn run_with_pdk(&self, lib: &EgfetLibrary, tech: &TechParams) -> Table1 {
        let opts = RunOptions { lib: lib.clone(), tech: *tech, ..self.opts.clone() };
        self.run_inner(&mut NullSink, &opts)
    }

    fn run_inner(&self, sink: &mut dyn ReportSink, opts: &RunOptions) -> Table1 {
        let reports = parallel_map_indexed(
            self.jobs.len(),
            self.threads,
            |i| {
                let job = self.jobs[i];
                let prepared = self.cache.get_or_train(job, &self.opts);
                run_prepared(job.profile, job.style, &prepared, opts)
            },
            |i, report| sink.on_report(self.jobs[i], report),
        );
        let mut table = Table1::default();
        for report in reports {
            table.push(report);
        }
        table
    }
}

/// The default worker count: the machine's parallelism, capped by the job
/// count (a 1-job grid should not spawn 16 idle workers).
#[must_use]
pub fn default_threads(jobs: usize) -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(jobs.max(1))
}

std::thread_local! {
    /// Set while the current thread is a [`parallel_map`] worker. Nested
    /// fan-outs (e.g. the precision search inside `prepare_model`, itself
    /// running on an engine or registry worker) degrade to the serial path
    /// instead of multiplying thread counts — results are identical either
    /// way, only scheduling changes.
    static IN_PARALLEL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Maps `f` over `0..n` on `threads` scoped workers and returns results in
/// index order — the deterministic fan-out primitive the engine, the
/// scaling sweeps and the fault campaigns share. `observe` fires in
/// completion order as each item finishes.
fn parallel_map_indexed<R: Send>(
    n: usize,
    threads: usize,
    f: impl Fn(usize) -> R + Sync,
    observe: impl FnMut(usize, &R) + Send,
) -> Vec<R> {
    let nested = IN_PARALLEL_WORKER.with(std::cell::Cell::get);
    let threads = if nested { 1 } else { threads.max(1).min(n.max(1)) };
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    if threads <= 1 {
        let mut observe = observe;
        for (i, slot) in slots.iter().enumerate() {
            let r = f(i);
            observe(i, &r);
            *slot.lock().expect("slot poisoned") = Some(r);
        }
    } else {
        let next = AtomicUsize::new(0);
        let observe = Mutex::new(observe);
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    IN_PARALLEL_WORKER.with(|w| w.set(true));
                    loop {
                        let i = next.fetch_add(1, Ordering::SeqCst);
                        if i >= n {
                            break;
                        }
                        let r = f(i);
                        {
                            let mut obs = observe.lock().expect("observer poisoned");
                            obs(i, &r);
                        }
                        *slots[i].lock().expect("slot poisoned") = Some(r);
                    }
                });
            }
        });
    }
    slots
        .into_iter()
        .map(|s| s.into_inner().expect("slot poisoned").expect("every index filled"))
        .collect()
}

/// Maps `f` over a slice on `threads` scoped workers, preserving input
/// order. The shared fan-out helper for sweeps and campaigns outside the
/// `(profile, style)` grid.
pub fn parallel_map<T: Sync, R: Send>(
    items: &[T],
    threads: usize,
    f: impl Fn(&T) -> R + Sync,
) -> Vec<R> {
    parallel_map_indexed(items.len(), threads, |i| f(&items[i]), |_, _| {})
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast_opts() -> RunOptions {
        RunOptions { max_sim_samples: 12, ..RunOptions::default() }
    }

    fn small_grid() -> Vec<Job> {
        vec![
            Job::new(UciProfile::Cardio, DesignStyle::SequentialSvm),
            Job::new(UciProfile::Cardio, DesignStyle::ParallelSvm),
            Job::new(UciProfile::Cardio, DesignStyle::ParallelMlp),
        ]
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<usize> = (0..57).collect();
        let out = parallel_map(&items, 8, |&x| x * x);
        assert_eq!(out, items.iter().map(|&x| x * x).collect::<Vec<_>>());
    }

    #[test]
    fn nested_parallel_map_degrades_to_serial() {
        let outer: Vec<usize> = (0..4).collect();
        let out = parallel_map(&outer, 4, |&i| {
            // On an outer worker thread the nested fan-out must run inline
            // (no thread multiplication) and still produce ordered results.
            let inner = parallel_map(&[1usize, 2, 3], 3, |&x| {
                assert!(
                    IN_PARALLEL_WORKER.with(std::cell::Cell::get),
                    "nested map must stay on the outer worker thread"
                );
                x * 10 + i
            });
            inner.iter().sum::<usize>()
        });
        assert_eq!(out, vec![60, 63, 66, 69]);
    }

    #[test]
    fn engine_matches_run_experiment() {
        let opts = fast_opts();
        let engine = ExperimentEngine::new(small_grid(), opts.clone()).with_threads(1);
        let table = engine.run();
        let direct =
            crate::pipeline::run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &opts);
        assert_eq!(table.rows[0], direct, "engine must reproduce run_experiment bit for bit");
    }

    #[test]
    fn serial_and_parallel_runs_are_bit_identical() {
        let serial = ExperimentEngine::new(small_grid(), fast_opts()).with_threads(1).run();
        let parallel = ExperimentEngine::new(small_grid(), fast_opts()).with_threads(4).run();
        assert_eq!(serial.rows, parallel.rows);
    }

    #[test]
    fn models_train_once_per_pair() {
        let mut jobs = small_grid();
        jobs.extend(small_grid()); // every pair appears twice
        let engine = ExperimentEngine::new(jobs, fast_opts()).with_threads(4);
        let table = engine.run();
        assert_eq!(table.rows.len(), 6);
        assert_eq!(engine.trainings(), 3, "duplicate jobs must reuse the memoized model");
        // A PDK re-run must not retrain either.
        let lib = pe_cells::EgfetLibrary::standard();
        let tech = pe_cells::TechParams::standard();
        let _ = engine.run_with_pdk(&lib, &tech);
        assert_eq!(engine.trainings(), 3);
    }

    #[test]
    fn streaming_sink_sees_every_job() {
        struct Counter(usize);
        impl ReportSink for Counter {
            fn on_report(&mut self, _job: Job, _report: &DesignReport) {
                self.0 += 1;
            }
        }
        let engine = ExperimentEngine::new(small_grid(), fast_opts()).with_threads(2);
        let mut sink = Counter(0);
        let table = engine.run_streaming(&mut sink);
        assert_eq!(sink.0, table.rows.len());
    }
}
