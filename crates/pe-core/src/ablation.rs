//! Ablations of the design decisions §II calls out.
//!
//! The paper motivates three choices without dedicating table space to them:
//! One-vs-Rest over One-vs-One (fewer stored support vectors, simpler
//! control), MUX-based storage over a crossbar ROM (crossbars need printed
//! ADCs), and the sequential folding itself. This module quantifies each so
//! the bench harness can regenerate the arguments.

use pe_cells::EgfetLibrary;
use pe_ml::QuantizedSvm;
use pe_netlist::{Builder, Netlist, Word};
use pe_synth::{analyze_area, mux};

/// Storage demand of a multi-class SVM: how many coefficients must live in
/// the storage component.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageDemand {
    /// Number of stored classifiers ("support vectors" in the paper's
    /// linear-SVM sense).
    pub classifiers: usize,
    /// Total stored coefficients (weights + biases).
    pub coefficients: usize,
    /// Total stored bits at the model's weight precision.
    pub bits: usize,
}

/// Computes the storage demand of a quantized model.
#[must_use]
pub fn storage_demand(q: &QuantizedSvm) -> StorageDemand {
    let classifiers = q.classifiers().len();
    let per = q.num_features() + 1; // weights + bias
    let coefficients = classifiers * per;
    StorageDemand { classifiers, coefficients, bits: coefficients * q.weight_bits() as usize }
}

/// The OvR-vs-OvO storage argument: for `n` classes OvR stores `n`
/// classifiers against OvO's `n(n-1)/2`. Returns `(ovr, ovo)` classifier
/// counts.
#[must_use]
pub fn ovr_vs_ovo_classifiers(n_classes: usize) -> (usize, usize) {
    (n_classes, n_classes * n_classes.saturating_sub(1) / 2)
}

/// Builds *only* the MUX-ROM storage of a model (counter-addressed weight
/// tables) so its cost can be isolated.
#[must_use]
pub fn build_storage_only(q: &QuantizedSvm) -> Netlist {
    let n = q.classifiers().len();
    let m = q.num_features();
    let mut b = Builder::new(format!("storage_{n}x{m}"));
    let sel_w = (usize::BITS - (n.max(2) - 1).leading_zeros()) as usize;
    let sel = Word::new(b.input_bus("sel", sel_w), false);
    b.group("storage");
    for i in 0..m {
        let table: Vec<i64> = (0..n).map(|c| q.classifiers()[c].weights_q[i]).collect();
        let w = mux::rom_mux(&mut b, &sel, &table);
        b.output_bus(format!("w{i}"), w.bits());
    }
    let biases: Vec<i64> = (0..n).map(|c| q.classifiers()[c].bias_q).collect();
    let bias = mux::rom_mux(&mut b, &sel, &biases);
    b.output_bus("bias", bias.bits());
    b.finish()
}

/// Analytic model of the crossbar-ROM alternative the authors evaluated and
/// rejected (§II): a printed crossbar stores bits densely but needs an
/// analog-to-digital converter per read-out column, and printed ADCs are
/// enormous. Constants follow the printed-electronics literature's order of
/// magnitude (a printed SAR-ADC occupies tens of cm² and milliwatts).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarModel {
    /// Crossbar cell area per stored bit, mm².
    pub bit_area_mm2: f64,
    /// Area per ADC, mm².
    pub adc_area_mm2: f64,
    /// Power per ADC, mW.
    pub adc_power_mw: f64,
    /// Static power per stored bit, µW.
    pub bit_power_uw: f64,
}

impl Default for CrossbarModel {
    fn default() -> Self {
        CrossbarModel {
            bit_area_mm2: 0.02,
            adc_area_mm2: 980.0, // ~10 cm² per printed ADC
            adc_power_mw: 5.8,
            bit_power_uw: 0.1,
        }
    }
}

/// Cost estimate of a crossbar-ROM storage replacement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossbarCost {
    /// Total area, cm².
    pub area_cm2: f64,
    /// Total power, mW.
    pub power_mw: f64,
    /// Number of ADCs (one per concurrently-read coefficient word).
    pub adcs: usize,
}

impl CrossbarModel {
    /// Estimates the crossbar storage cost for a model: one analog column
    /// read-out (and hence one ADC) per coefficient word fetched per cycle
    /// (`m` weights + 1 bias for the sequential engine).
    #[must_use]
    pub fn cost(&self, q: &QuantizedSvm) -> CrossbarCost {
        let demand = storage_demand(q);
        let adcs = q.num_features() + 1;
        let area_mm2 = demand.bits as f64 * self.bit_area_mm2 + adcs as f64 * self.adc_area_mm2;
        let power_mw =
            demand.bits as f64 * self.bit_power_uw / 1000.0 + adcs as f64 * self.adc_power_mw;
        CrossbarCost { area_cm2: area_mm2 / 100.0, power_mw, adcs }
    }
}

/// Compares MUX-ROM storage (built and measured as a real netlist) against
/// the crossbar model. Returns `(mux_area_cm2, crossbar_area_cm2)`.
#[must_use]
pub fn mux_vs_crossbar_area(q: &QuantizedSvm, lib: &EgfetLibrary) -> (f64, f64) {
    let storage = build_storage_only(q);
    let mux_area = analyze_area(&storage, lib).total_cm2;
    let crossbar = CrossbarModel::default().cost(q);
    (mux_area, crossbar.area_cm2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_data::{train_test_split, Normalizer, UciProfile};
    use pe_ml::linear::SvmTrainParams;
    use pe_ml::multiclass::{MulticlassScheme, SvmModel};

    fn model(scheme: MulticlassScheme) -> QuantizedSvm {
        let d = UciProfile::Cardio.generate(17);
        let (train, _) = train_test_split(&d, 0.2, 17);
        let train = Normalizer::fit(&train).apply(&train);
        let sub: Vec<usize> = (0..250).collect();
        let p = SvmTrainParams { max_epochs: 20, ..SvmTrainParams::default() };
        let m = SvmModel::train(&train.subset(&sub, "-s"), scheme, &p);
        QuantizedSvm::quantize(&m, 4, 6)
    }

    #[test]
    fn storage_demand_counts() {
        let q = model(MulticlassScheme::OneVsRest);
        let d = storage_demand(&q);
        assert_eq!(d.classifiers, 3);
        assert_eq!(d.coefficients, 3 * 22);
        assert_eq!(d.bits, 3 * 22 * 6);
    }

    #[test]
    fn ovr_stores_fewer_for_many_classes() {
        assert_eq!(ovr_vs_ovo_classifiers(3), (3, 3));
        assert_eq!(ovr_vs_ovo_classifiers(6), (6, 15));
        assert_eq!(ovr_vs_ovo_classifiers(10), (10, 45));
    }

    #[test]
    fn storage_only_netlist_is_small_and_combinational() {
        let q = model(MulticlassScheme::OneVsRest);
        let nl = build_storage_only(&q);
        nl.validate().unwrap();
        assert_eq!(nl.num_seq_cells(), 0);
        // Bespoke folding: far fewer cells than a naive
        // (n-1 muxes × bits) implementation.
        let naive = (3 - 1) * storage_demand(&q).bits;
        assert!(nl.num_cells() < naive, "{} vs naive {}", nl.num_cells(), naive);
    }

    #[test]
    fn crossbar_is_more_expensive_than_mux_rom() {
        // The paper: "crossbars prove more costly, mainly due to the need
        // for printed ADCs."
        let q = model(MulticlassScheme::OneVsRest);
        let (mux_area, crossbar_area) = mux_vs_crossbar_area(&q, &EgfetLibrary::standard());
        assert!(
            crossbar_area > mux_area,
            "crossbar {crossbar_area} cm² must exceed MUX-ROM {mux_area} cm²"
        );
        let cost = CrossbarModel::default().cost(&q);
        assert_eq!(cost.adcs, 22);
        assert!(cost.power_mw > 10.0, "ADC power dominates: {}", cost.power_mw);
    }
}
