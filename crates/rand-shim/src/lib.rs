//! Offline deterministic stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this crate provides the
//! subset of the `rand` 0.8 API the workspace uses, over a xoshiro256\*\*
//! generator seeded via SplitMix64. Streams are stable across platforms and
//! releases — every dataset, split and training shuffle in this repository
//! is reproducible from a `u64` seed alone.

pub mod rngs;
pub mod seq;

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly from a generator's raw bits.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one value from the range using `rng`.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty => $ut:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                // Cast through the unsigned same-width type so signed spans
                // wider than the type's positive half don't sign-extend.
                let span = self.end.wrapping_sub(self.start) as $ut as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in gen_range");
                let span = hi.wrapping_sub(lo) as $ut as u64;
                if span >= u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add((rng.next_u64() % (span + 1)) as $t)
            }
        }
    )*};
}

impl_int_range!(i64 => u64, i32 => u32, u64 => u64, u32 => u32, usize => usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range in gen_range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling interface, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws one uniformly distributed value (`f64` lands in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn streams_are_deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_lands_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..1000 {
            let v = rng.gen_range(-31i64..32);
            assert!((-31..32).contains(&v));
            let u = rng.gen_range(0usize..7);
            assert!(u < 7);
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((700..1300).contains(&c), "bucket count {c} far from 1000");
        }
    }

    #[test]
    fn gen_range_handles_spans_wider_than_the_signed_half() {
        // i32 span > i32::MAX used to sign-extend and escape the range.
        let mut rng = StdRng::seed_from_u64(13);
        for _ in 0..1000 {
            let v = rng.gen_range(-2_000_000_000i32..2_000_000_000);
            assert!((-2_000_000_000..2_000_000_000).contains(&v), "escaped: {v}");
            let w = rng.gen_range(i64::MIN..=i64::MAX);
            let _ = w; // full-range inclusive must not panic
        }
    }

    #[test]
    fn shuffle_is_a_permutation_and_seed_dependent() {
        use crate::seq::SliceRandom;
        let mut a: Vec<usize> = (0..50).collect();
        let mut b: Vec<usize> = (0..50).collect();
        a.shuffle(&mut StdRng::seed_from_u64(1));
        b.shuffle(&mut StdRng::seed_from_u64(2));
        assert_ne!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
