//! Lock-free counters and log-scale histograms with interval (delta)
//! snapshot semantics.
//!
//! Writers touch one atomic per event. Readers take [`HistSnapshot`]s —
//! plain bucket-count arrays — and subtract an older snapshot to get the
//! histogram of just the interval between them. The same pattern covers
//! scalar rates via [`RateWindow`]: feed it the current total and a
//! timestamp, get back the rate over the window since the previous feed.
//!
//! Latencies land in power-of-two nanosecond buckets, so quantiles are
//! estimates with at most 2× resolution error — plenty for spotting the
//! knee of a latency curve, and immune to coordinated omission caused by a
//! locked histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Number of log-scale latency buckets (covers 1 ns .. ~2^63 ns).
pub const BUCKETS: usize = 64;

/// The bucket covering a duration: `floor(log2(ns))`, with sub-nanosecond
/// samples landing in bucket 0 and everything from 2^63 ns up saturating
/// into the last bucket. [`bucket_value`] is the inverse mapping; keeping
/// them adjacent is what guarantees `record` and `quantile` agree on every
/// bucket, the top one included.
#[must_use]
pub fn bucket_index(d: Duration) -> usize {
    let ns = (d.as_nanos() as u64).max(1);
    (ns.ilog2() as usize).min(BUCKETS - 1)
}

/// The representative duration of bucket `i`: the arithmetic midpoint
/// `1.5 * 2^i` of the covered range `[2^i, 2^(i+1))`. For the top bucket
/// (`i = 63`) the midpoint still fits a `u64` nanosecond count.
#[must_use]
pub fn bucket_value(i: usize) -> Duration {
    let lo = 1u64 << i;
    Duration::from_nanos(lo + lo / 2)
}

/// A monotonically increasing lock-free counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    #[must_use]
    pub fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current total.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A lock-free **gauge**: a level that moves both ways (open connections,
/// readiness-queue depth, parked requests), where [`Counter`] only ever
/// grows. `add`/`sub` pair around a resource's lifetime; `peak` remembers
/// the high-water mark so a scrape between bursts still shows how high the
/// level got.
#[derive(Debug, Default)]
pub struct Gauge {
    level: AtomicU64,
    peak: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Raises the level by `n` and updates the high-water mark.
    pub fn add(&self, n: u64) {
        let now = self.level.fetch_add(n, Ordering::Relaxed) + n;
        self.peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Raises the level by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Lowers the level by `n`, saturating at zero (a stray extra `sub`
    /// must not wrap the gauge to 2^64).
    pub fn sub(&self, n: u64) {
        let mut cur = self.level.load(Ordering::Relaxed);
        loop {
            let next = cur.saturating_sub(n);
            match self.level.compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Lowers the level by one.
    pub fn dec(&self) {
        self.sub(1);
    }

    /// Sets the level outright (for sampled gauges like queue depth) and
    /// updates the high-water mark.
    pub fn set(&self, n: u64) {
        self.level.store(n, Ordering::Relaxed);
        self.peak.fetch_max(n, Ordering::Relaxed);
    }

    /// The current level.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.level.load(Ordering::Relaxed)
    }

    /// The highest level ever observed.
    #[must_use]
    pub fn peak(&self) -> u64 {
        self.peak.load(Ordering::Relaxed)
    }
}

/// A lock-free histogram over power-of-two nanosecond buckets.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram { buckets: std::array::from_fn(|_| AtomicU64::new(0)) }
    }

    /// Records one sample.
    pub fn record(&self, d: Duration) {
        self.buckets[bucket_index(d)].fetch_add(1, Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts. Buckets are read
    /// individually (relaxed), so a snapshot taken during writes may
    /// straddle an in-flight sample — fine for monitoring.
    #[must_use]
    pub fn snapshot(&self) -> HistSnapshot {
        HistSnapshot { counts: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)) }
    }

    /// The `q`-quantile over everything recorded so far (see
    /// [`HistSnapshot::quantile`]).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        self.snapshot().quantile(q)
    }
}

/// Plain bucket counts copied out of a [`Histogram`] — the unit of interval
/// arithmetic: subtract an older snapshot to get the histogram of just the
/// window between the two.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Samples per power-of-two bucket (see [`bucket_index`]).
    pub counts: [u64; BUCKETS],
}

impl Default for HistSnapshot {
    fn default() -> Self {
        HistSnapshot { counts: [0; BUCKETS] }
    }
}

impl HistSnapshot {
    /// Total samples in this snapshot.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The histogram of the interval between `older` and `self`: per-bucket
    /// saturating difference, so a torn read can never underflow.
    #[must_use]
    pub fn delta_since(&self, older: &HistSnapshot) -> HistSnapshot {
        HistSnapshot {
            counts: std::array::from_fn(|i| self.counts[i].saturating_sub(older.counts[i])),
        }
    }

    /// Merges another snapshot in (bucket-wise sum) — the aggregate of two
    /// shards.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
    }

    /// The `q`-quantile as the arithmetic midpoint of the covering bucket
    /// ([`bucket_value`]; zero when nothing was recorded).
    #[must_use]
    pub fn quantile(&self, q: f64) -> Duration {
        let total = self.count();
        if total == 0 {
            return Duration::ZERO;
        }
        let rank = ((total as f64 - 1.0) * q.clamp(0.0, 1.0)).floor() as u64;
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if c > 0 && seen > rank {
                return bucket_value(i);
            }
        }
        Duration::ZERO
    }
}

/// Turns a monotonically increasing total into a windowed rate: each
/// [`RateWindow::tick`] closes the window opened by the previous one and
/// returns events/second over it. The first tick reports over the window
/// since construction.
///
/// The lock is only taken by readers (snapshotters); writers never touch a
/// `RateWindow`.
#[derive(Debug)]
pub struct RateWindow {
    last: Mutex<(Instant, u64)>,
}

impl RateWindow {
    /// Opens the first window now, at the given starting total.
    #[must_use]
    pub fn new(total: u64) -> Self {
        RateWindow { last: Mutex::new((Instant::now(), total)) }
    }

    /// Closes the current window at `total` events and returns
    /// `(events/second over the window, window length)`. Windows shorter
    /// than a millisecond report a zero rate rather than a wild one.
    pub fn tick(&self, total: u64) -> (f64, Duration) {
        let mut last = self.last.lock().expect("rate window poisoned");
        let now = Instant::now();
        let dt = now.duration_since(last.0);
        let events = total.saturating_sub(last.1);
        *last = (now, total);
        if dt < Duration::from_millis(1) {
            (0.0, dt)
        } else {
            (events as f64 / dt.as_secs_f64(), dt)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_bracket_recorded_values() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(Duration::from_micros(100)); // bucket [65.5, 131] µs
        }
        for _ in 0..10 {
            h.record(Duration::from_millis(10));
        }
        let p50 = h.quantile(0.5);
        assert!(p50 >= Duration::from_micros(64) && p50 <= Duration::from_micros(200), "{p50:?}");
        let p99 = h.quantile(0.99);
        assert!(p99 >= Duration::from_millis(8) && p99 <= Duration::from_millis(25), "{p99:?}");
        assert_eq!(Histogram::new().quantile(0.5), Duration::ZERO);
    }

    #[test]
    fn top_bucket_samples_are_not_misreported() {
        let h = Histogram::new();
        h.record(Duration::from_nanos(u64::MAX)); // bucket 63
        let q = h.quantile(0.5);
        assert_eq!(q, bucket_value(63));
        assert!(q >= Duration::from_nanos(1u64 << 63), "{q:?} must be in the top bucket");
    }

    #[test]
    fn bucket_mapping_round_trips() {
        for i in 0..BUCKETS {
            assert_eq!(bucket_index(bucket_value(i)), i, "bucket {i} must map to itself");
        }
        assert_eq!(bucket_index(Duration::ZERO), 0);
        assert_eq!(bucket_index(Duration::from_nanos(1)), 0);
        assert_eq!(bucket_index(Duration::from_nanos(2)), 1);
        assert_eq!(bucket_index(Duration::from_nanos((1 << 10) - 1)), 9);
        assert_eq!(bucket_index(Duration::from_nanos(1 << 10)), 10);
    }

    #[test]
    fn interval_snapshots_subtract() {
        let h = Histogram::new();
        for _ in 0..50 {
            h.record(Duration::from_micros(10));
        }
        let warm = h.snapshot();
        assert_eq!(warm.count(), 50);
        for _ in 0..5 {
            h.record(Duration::from_millis(50));
        }
        let now = h.snapshot();
        let delta = now.delta_since(&warm);
        // The interval holds only the 5 slow samples: its median is slow
        // even though the lifetime median is fast.
        assert_eq!(delta.count(), 5);
        assert!(delta.quantile(0.5) >= Duration::from_millis(32));
        assert!(now.quantile(0.5) <= Duration::from_micros(20));
        // Merge is the inverse of delta.
        let mut merged = delta;
        merged.merge(&warm);
        assert_eq!(merged, now);
    }

    #[test]
    fn rate_window_reports_interval_rate_not_lifetime() {
        let w = RateWindow::new(0);
        std::thread::sleep(Duration::from_millis(20));
        let (r1, dt1) = w.tick(100);
        assert!(dt1 >= Duration::from_millis(20));
        assert!(r1 > 0.0, "100 events over ~20ms must be a positive rate");
        std::thread::sleep(Duration::from_millis(20));
        // No new events in the second window: the interval rate is zero even
        // though the lifetime total is 100.
        let (r2, _) = w.tick(100);
        assert_eq!(r2, 0.0);
    }

    #[test]
    fn counters_accumulate() {
        let c = Counter::new();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
    }

    #[test]
    fn gauges_move_both_ways_and_remember_their_peak() {
        let g = Gauge::new();
        g.add(3);
        g.inc();
        assert_eq!(g.get(), 4);
        g.dec();
        g.sub(2);
        assert_eq!(g.get(), 1);
        assert_eq!(g.peak(), 4, "peak survives the drop");
        // A stray extra sub saturates at zero instead of wrapping.
        g.sub(100);
        assert_eq!(g.get(), 0);
        g.set(7);
        assert_eq!(g.get(), 7);
        assert_eq!(g.peak(), 7);
        g.set(2);
        assert_eq!(g.peak(), 7, "set never lowers the peak");
    }
}
