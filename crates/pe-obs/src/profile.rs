//! Simulator profiling hooks: the [`SimProfile`] trait the simulator crate
//! feeds, and [`ProfileRecorder`], the atomic aggregator most consumers
//! install.
//!
//! The simulator cannot know who wants its numbers — a serving metrics
//! shard, a fault-campaign progress printer, a bench harness — so it talks
//! to this trait. Two feed points:
//!
//! * [`SimProfile::on_batch`] — once per bit-sliced `run_batch` call, with
//!   the phase decomposition (drive/eval/readout nanoseconds), sweep count,
//!   cycles, and combinational cell evaluations (under event-driven sweeps
//!   that figure **is** the dirty-cell evaluation count — the work metric
//!   the worklist exists to shrink).
//! * [`SimProfile::on_chunk`] / [`SimProfile::on_campaign_golden`] — once
//!   per PPSFP fault-campaign chunk (cone-scheduled or full-sweep fallback,
//!   with the cone/core cell counts) and once for the campaign's golden
//!   run, so a recorder's totals reconcile exactly with the campaign's
//!   exit-summary `ConeStats`.
//!
//! Implementations must be cheap and non-blocking: hooks run on the serving
//! hot path. [`ProfileRecorder`] is all relaxed atomics.

use std::sync::atomic::{AtomicU64, Ordering};

/// One bit-sliced `run_batch` call, decomposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimBatch {
    /// Requests (vectors) in the batch.
    pub lanes: usize,
    /// Slab width in 64-lane words.
    pub lane_words: usize,
    /// `64 * lane_words`-lane sweeps (chunks) the batch took.
    pub sweeps: u64,
    /// Clock cycles accounted by the batch.
    pub cycles: u64,
    /// Combinational cell evaluations spent (the dirty-cell evaluation
    /// count when `event_driven`).
    pub cell_evals: u64,
    /// Nanoseconds packing inputs into lane slabs.
    pub drive_ns: u64,
    /// Nanoseconds settling/ticking the core (the actual simulation).
    pub eval_ns: u64,
    /// Nanoseconds reading outputs back out and collapsing the carry lane.
    pub readout_ns: u64,
    /// Whether the dirty-cell worklist engine ran this batch.
    pub event_driven: bool,
}

/// One PPSFP fault-campaign chunk (`64 * W` pinned sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SimChunk {
    /// Fault sites pinned in this chunk.
    pub sites: usize,
    /// Whether the chunk was evaluated through its fanout cone (false = the
    /// full-sweep fallback).
    pub cone_scheduled: bool,
    /// Combinational cells in the chunk's union cone.
    pub cone_cells: usize,
    /// Combinational cells in the whole scheduled core (the fallback cost).
    pub core_cells: usize,
    /// Cell evaluations this chunk actually spent.
    pub cell_evals: u64,
}

/// The hook trait. All methods default to no-ops so implementors opt into
/// the feed points they care about. `Debug` is required so simulators
/// holding a hook stay debuggable.
pub trait SimProfile: Send + Sync + std::fmt::Debug {
    /// Called once per bit-sliced `run_batch` call.
    fn on_batch(&self, batch: &SimBatch) {
        let _ = batch;
    }

    /// Called once per PPSFP campaign chunk.
    fn on_chunk(&self, chunk: &SimChunk) {
        let _ = chunk;
    }

    /// Called once per campaign with the golden (fault-free) run's cell
    /// evaluations, so chunk totals + golden == the campaign's total work.
    fn on_campaign_golden(&self, cell_evals: u64) {
        let _ = cell_evals;
    }
}

/// A hook that ignores everything (the default wiring).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullProfile;

impl SimProfile for NullProfile {}

/// Atomic aggregator of every feed point; share one `Arc<ProfileRecorder>`
/// between any number of simulators (e.g. all batches of one model key) and
/// snapshot it whenever a report is due.
#[derive(Debug, Default)]
pub struct ProfileRecorder {
    batches: AtomicU64,
    lanes: AtomicU64,
    sweeps: AtomicU64,
    cycles: AtomicU64,
    cell_evals: AtomicU64,
    drive_ns: AtomicU64,
    eval_ns: AtomicU64,
    readout_ns: AtomicU64,
    event_batches: AtomicU64,
    event_cell_evals: AtomicU64,
    chunks: AtomicU64,
    cone_chunks: AtomicU64,
    fallback_chunks: AtomicU64,
    campaign_cell_evals: AtomicU64,
    campaign_sites: AtomicU64,
}

impl ProfileRecorder {
    /// A recorder at zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// A consistent-enough point-in-time copy (relaxed loads; may straddle
    /// an in-flight batch, which is fine for monitoring).
    #[must_use]
    pub fn snapshot(&self) -> ProfileSnapshot {
        ProfileSnapshot {
            batches: self.batches.load(Ordering::Relaxed),
            lanes: self.lanes.load(Ordering::Relaxed),
            sweeps: self.sweeps.load(Ordering::Relaxed),
            cycles: self.cycles.load(Ordering::Relaxed),
            cell_evals: self.cell_evals.load(Ordering::Relaxed),
            drive_ns: self.drive_ns.load(Ordering::Relaxed),
            eval_ns: self.eval_ns.load(Ordering::Relaxed),
            readout_ns: self.readout_ns.load(Ordering::Relaxed),
            event_batches: self.event_batches.load(Ordering::Relaxed),
            event_cell_evals: self.event_cell_evals.load(Ordering::Relaxed),
            chunks: self.chunks.load(Ordering::Relaxed),
            cone_chunks: self.cone_chunks.load(Ordering::Relaxed),
            fallback_chunks: self.fallback_chunks.load(Ordering::Relaxed),
            campaign_cell_evals: self.campaign_cell_evals.load(Ordering::Relaxed),
            campaign_sites: self.campaign_sites.load(Ordering::Relaxed),
        }
    }
}

impl SimProfile for ProfileRecorder {
    fn on_batch(&self, b: &SimBatch) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.lanes.fetch_add(b.lanes as u64, Ordering::Relaxed);
        self.sweeps.fetch_add(b.sweeps, Ordering::Relaxed);
        self.cycles.fetch_add(b.cycles, Ordering::Relaxed);
        self.cell_evals.fetch_add(b.cell_evals, Ordering::Relaxed);
        self.drive_ns.fetch_add(b.drive_ns, Ordering::Relaxed);
        self.eval_ns.fetch_add(b.eval_ns, Ordering::Relaxed);
        self.readout_ns.fetch_add(b.readout_ns, Ordering::Relaxed);
        if b.event_driven {
            self.event_batches.fetch_add(1, Ordering::Relaxed);
            self.event_cell_evals.fetch_add(b.cell_evals, Ordering::Relaxed);
        }
    }

    fn on_chunk(&self, c: &SimChunk) {
        self.chunks.fetch_add(1, Ordering::Relaxed);
        if c.cone_scheduled {
            self.cone_chunks.fetch_add(1, Ordering::Relaxed);
        } else {
            self.fallback_chunks.fetch_add(1, Ordering::Relaxed);
        }
        self.campaign_cell_evals.fetch_add(c.cell_evals, Ordering::Relaxed);
        self.campaign_sites.fetch_add(c.sites as u64, Ordering::Relaxed);
    }

    fn on_campaign_golden(&self, cell_evals: u64) {
        self.campaign_cell_evals.fetch_add(cell_evals, Ordering::Relaxed);
    }
}

/// A plain copy of a [`ProfileRecorder`]'s totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ProfileSnapshot {
    /// `run_batch` calls observed.
    pub batches: u64,
    /// Requests (vectors) across those batches.
    pub lanes: u64,
    /// Bit-sliced sweeps executed.
    pub sweeps: u64,
    /// Clock cycles accounted.
    pub cycles: u64,
    /// Combinational cell evaluations spent by batches.
    pub cell_evals: u64,
    /// Nanoseconds packing inputs.
    pub drive_ns: u64,
    /// Nanoseconds settling/ticking.
    pub eval_ns: u64,
    /// Nanoseconds reading outputs / collapsing.
    pub readout_ns: u64,
    /// Batches that ran event-driven.
    pub event_batches: u64,
    /// Cell evaluations (dirty-cell work) of the event-driven batches.
    pub event_cell_evals: u64,
    /// PPSFP campaign chunks observed.
    pub chunks: u64,
    /// Chunks evaluated through their fanout cone.
    pub cone_chunks: u64,
    /// Chunks that fell back to full sweeps.
    pub fallback_chunks: u64,
    /// Campaign cell evaluations (chunks + golden run).
    pub campaign_cell_evals: u64,
    /// Fault sites across the observed chunks.
    pub campaign_sites: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_aggregates_batches_and_chunks() {
        let r = ProfileRecorder::new();
        r.on_batch(&SimBatch {
            lanes: 300,
            lane_words: 8,
            sweeps: 1,
            cycles: 3000,
            cell_evals: 5000,
            drive_ns: 100,
            eval_ns: 900,
            readout_ns: 50,
            event_driven: false,
        });
        r.on_batch(&SimBatch {
            lanes: 64,
            lane_words: 1,
            sweeps: 1,
            cycles: 640,
            cell_evals: 200,
            drive_ns: 10,
            eval_ns: 90,
            readout_ns: 5,
            event_driven: true,
        });
        r.on_chunk(&SimChunk {
            sites: 512,
            cone_scheduled: true,
            cone_cells: 40,
            core_cells: 400,
            cell_evals: 4000,
        });
        r.on_chunk(&SimChunk {
            sites: 100,
            cone_scheduled: false,
            cone_cells: 390,
            core_cells: 400,
            cell_evals: 40_000,
        });
        r.on_campaign_golden(1234);
        let s = r.snapshot();
        assert_eq!(s.batches, 2);
        assert_eq!(s.lanes, 364);
        assert_eq!(s.cell_evals, 5200);
        assert_eq!(s.drive_ns, 110);
        assert_eq!(s.eval_ns, 990);
        assert_eq!(s.readout_ns, 55);
        assert_eq!(s.event_batches, 1);
        assert_eq!(s.event_cell_evals, 200);
        assert_eq!(s.chunks, 2);
        assert_eq!(s.cone_chunks, 1);
        assert_eq!(s.fallback_chunks, 1);
        assert_eq!(s.campaign_cell_evals, 44_000 + 1234);
        assert_eq!(s.campaign_sites, 612);
    }

    #[test]
    fn recorder_is_shareable_across_threads() {
        let r = std::sync::Arc::new(ProfileRecorder::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let r = std::sync::Arc::clone(&r);
                s.spawn(move || {
                    for _ in 0..250 {
                        r.on_batch(&SimBatch {
                            lanes: 1,
                            lane_words: 1,
                            sweeps: 1,
                            cycles: 1,
                            cell_evals: 1,
                            drive_ns: 1,
                            eval_ns: 1,
                            readout_ns: 1,
                            event_driven: false,
                        });
                    }
                });
            }
        });
        assert_eq!(r.snapshot().batches, 1000);
        assert_eq!(r.snapshot().cell_evals, 1000);
    }
}
