//! A fixed-capacity, non-blocking ring of per-request span records.
//!
//! The serving layer traces each request through five spans:
//!
//! ```text
//! enqueue ──queue_wait──▶ coalesce ──setup──▶ sweep ──verify──▶ reply
//! ```
//!
//! * **queue_wait** — submission until a worker drained the request's batch
//!   from the pending queue (the coalescing delay: deadline + queue depth).
//! * **setup** — batch drained until the simulator starts sweeping: model
//!   lookup, request unpacking, the integer golden path in verify mode, and
//!   simulator stamping.
//! * **sweep** — the gate-level `run_batch` call itself.
//! * **verify** — the integer-vs-gate cross-check (zero outside verify mode).
//! * **reply** — fan-out of the batch's predictions to the reply channels.
//!
//! Writers claim a slot with one `fetch_add` and a `try_lock`: a contended
//! slot **drops the record** and counts the drop instead of blocking the
//! serving hot path. Readers ([`TraceRing::recent`]) lock slots one at a
//! time, so a dump never stops the world.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One traced request: the five span durations plus enough context to read
/// the dump without cross-referencing (model, batch occupancy, reply time).
#[derive(Debug, Clone, PartialEq)]
pub struct RequestTrace {
    /// Monotonic sequence number assigned at record time (dump order key).
    pub seq: u64,
    /// The model key token the request addressed (e.g. `cardio:seq`).
    pub model: String,
    /// How many requests rode in the same coalesced batch.
    pub batch_lanes: usize,
    /// Submission until the batch was drained by a worker.
    pub queue_wait: Duration,
    /// Batch drained until the gate-level sweep started.
    pub setup: Duration,
    /// The gate-level `run_batch` call.
    pub sweep: Duration,
    /// The integer-vs-gate cross-check (verify mode only).
    pub verify: Duration,
    /// Prediction fan-out to the reply channels.
    pub reply: Duration,
    /// Submission to reply — the latency the client saw.
    pub total: Duration,
    /// When the reply was sent (for "age" in dumps).
    pub at: Instant,
}

impl RequestTrace {
    /// One parse-friendly dump line (the `trace` wire format), newest-first
    /// consumers prepend their own framing.
    #[must_use]
    pub fn to_line(&self, now: Instant) -> String {
        let us = |d: Duration| d.as_secs_f64() * 1e6;
        format!(
            "seq={} model={} age_ms={:.0} total_us={:.1} queue_us={:.1} setup_us={:.1} \
             sweep_us={:.1} verify_us={:.1} reply_us={:.1} lanes={}",
            self.seq,
            self.model,
            now.saturating_duration_since(self.at).as_secs_f64() * 1e3,
            us(self.total),
            us(self.queue_wait),
            us(self.setup),
            us(self.sweep),
            us(self.verify),
            us(self.reply),
            self.batch_lanes,
        )
    }
}

/// The ring. Capacity 0 disables tracing entirely (every record is a cheap
/// no-op), which is also the instrumentation-off baseline the overhead
/// measurement uses.
#[derive(Debug)]
pub struct TraceRing {
    slots: Vec<Mutex<Option<RequestTrace>>>,
    next: AtomicUsize,
    seq: AtomicU64,
    dropped: AtomicU64,
}

impl TraceRing {
    /// A ring holding the most recent `capacity` records.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            seq: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Whether records can ever land (capacity > 0).
    #[must_use]
    pub fn enabled(&self) -> bool {
        !self.slots.is_empty()
    }

    /// Records one trace, assigning its sequence number. Never blocks: if
    /// the claimed slot is momentarily held by a reader (or another writer
    /// that wrapped), the record is dropped and counted.
    pub fn record(&self, mut trace: RequestTrace) {
        if self.slots.is_empty() {
            return;
        }
        trace.seq = self.seq.fetch_add(1, Ordering::Relaxed);
        let slot = self.next.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        match self.slots[slot].try_lock() {
            Ok(mut guard) => *guard = Some(trace),
            Err(_) => {
                self.dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Records dropped to slot contention so far.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Total records ever offered to the ring (accepted + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.seq.load(Ordering::Relaxed)
    }

    /// The most recent `limit` records, newest first. Slots are locked one
    /// at a time; a slot a writer holds right now is skipped.
    #[must_use]
    pub fn recent(&self, limit: usize) -> Vec<RequestTrace> {
        let mut out: Vec<RequestTrace> = Vec::new();
        for slot in &self.slots {
            if let Ok(guard) = slot.try_lock() {
                if let Some(t) = guard.as_ref() {
                    out.push(t.clone());
                }
            }
        }
        out.sort_by_key(|ev| std::cmp::Reverse(ev.seq));
        out.truncate(limit);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(model: &str, total_us: u64) -> RequestTrace {
        RequestTrace {
            seq: 0,
            model: model.to_owned(),
            batch_lanes: 4,
            queue_wait: Duration::from_micros(total_us / 2),
            setup: Duration::from_micros(total_us / 8),
            sweep: Duration::from_micros(total_us / 4),
            verify: Duration::ZERO,
            reply: Duration::from_micros(total_us / 8),
            total: Duration::from_micros(total_us),
            at: Instant::now(),
        }
    }

    #[test]
    fn ring_keeps_the_most_recent_records() {
        let ring = TraceRing::new(4);
        for i in 0..10 {
            ring.record(trace("cardio:seq", 100 + i));
        }
        let recent = ring.recent(16);
        assert_eq!(recent.len(), 4, "capacity bounds the dump");
        // Newest first, and the oldest six wrapped away.
        assert_eq!(recent[0].seq, 9);
        assert_eq!(recent[3].seq, 6);
        assert_eq!(ring.recorded(), 10);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let ring = TraceRing::new(0);
        assert!(!ring.enabled());
        ring.record(trace("cardio:seq", 10));
        assert!(ring.recent(8).is_empty());
        assert_eq!(ring.recorded(), 0);
    }

    #[test]
    fn concurrent_writers_never_block_and_rarely_drop() {
        let ring = std::sync::Arc::new(TraceRing::new(64));
        std::thread::scope(|s| {
            for t in 0..8 {
                let ring = std::sync::Arc::clone(&ring);
                s.spawn(move || {
                    for i in 0..1000 {
                        ring.record(trace("m", t * 1000 + i));
                    }
                });
            }
        });
        let total = ring.recorded();
        assert_eq!(total, 8000);
        // Every record was either stored or counted as dropped; the dump is
        // well-formed either way.
        let recent = ring.recent(64);
        assert!(recent.len() <= 64);
        for w in recent.windows(2) {
            assert!(w[0].seq > w[1].seq, "dump must be newest-first");
        }
    }

    #[test]
    fn trace_lines_round_trip_key_fields() {
        let t = trace("pendigits:seq", 800);
        let line = t.to_line(Instant::now());
        assert!(line.contains("model=pendigits:seq"), "{line}");
        assert!(line.contains("total_us=800.0"), "{line}");
        assert!(line.contains("queue_us=400.0"), "{line}");
        assert!(line.contains("lanes=4"), "{line}");
    }
}
