//! `pe-obs` — the workspace's std-only observability kit.
//!
//! Serving traffic through the bit-sliced simulator is only tunable when
//! every layer can say where time went. This crate holds the three reusable
//! instruments the stack shares, all built on `std` atomics (no
//! dependencies, `unsafe` forbidden):
//!
//! * [`hist`] — lock-free counters and log-scale latency histograms with
//!   **interval snapshots**: every snapshot carries plain bucket counts, so
//!   consumers subtract two snapshots ([`HistSnapshot::delta_since`]) to get
//!   windowed quantiles/rates instead of since-start totals. A service that
//!   idled through warm-up no longer deflates its reported throughput
//!   forever.
//! * [`trace`] — a fixed-capacity, non-blocking ring of per-request span
//!   records (`enqueue → coalesce → sweep → verify → reply`). Writers never
//!   block: a contended slot drops the record and counts the drop. Readers
//!   dump the most recent spans for a `trace` wire command.
//! * [`profile`] — the [`SimProfile`](profile::SimProfile) hook trait the
//!   simulator crate feeds with per-batch phase timings (drive/eval/readout),
//!   sweep counts, event-driven work accounting, and per-chunk fault-campaign
//!   cone statistics — plus [`ProfileRecorder`](profile::ProfileRecorder), an
//!   atomic aggregator any number of simulators can share.
//!
//! The dependency direction is strictly upward: `pe-sim` and `pe-serve`
//! depend on this crate, never the reverse, so the instruments stay reusable
//! by campaign binaries, benches and tests alike.

pub mod hist;
pub mod profile;
pub mod trace;

pub use hist::{Counter, Gauge, HistSnapshot, Histogram, RateWindow};
pub use profile::{NullProfile, ProfileRecorder, ProfileSnapshot, SimBatch, SimChunk, SimProfile};
pub use trace::{RequestTrace, TraceRing};
