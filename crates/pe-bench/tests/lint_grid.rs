//! Admission gate over the paper's evaluation grid: every Table-I design
//! the generators elaborate must lint free of Error-severity diagnostics,
//! so the serving registry admits all of them. Warn/Info findings (dead
//! cells from the argmax tree, constant-fed gates) are expected and
//! legitimate — the gate is *structural soundness*, not warning-free-ness.
//!
//! Kept to one profile's styles plus spot checks so the debug-mode test
//! stays fast; the `lint --all` binary covers the full 5 × 4 grid in CI.

use pe_core::pipeline::{build_netlist, prepare_model, RunOptions};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;
use pe_lint::{collapse_fault_sites, lint_netlist};
use pe_serve::registry::admit_netlist;

#[test]
fn generated_designs_admit_with_zero_errors() {
    let opts = RunOptions::default();
    let cases: Vec<(UciProfile, DesignStyle)> = DesignStyle::all()
        .into_iter()
        .map(|s| (UciProfile::Cardio, s))
        .chain([
            (UciProfile::RedWine, DesignStyle::SequentialSvm),
            (UciProfile::Dermatology, DesignStyle::ParallelSvm),
        ])
        .collect();
    for (profile, style) in cases {
        let prepared = prepare_model(profile, style, &opts);
        let nl = build_netlist(style, &prepared);
        let report = lint_netlist(&nl);
        assert!(
            !report.has_errors(),
            "{}:{} must lint error-free, got:\n{report}",
            profile.name(),
            style.label()
        );
        admit_netlist(&nl).unwrap_or_else(|r| {
            panic!("{}:{} refused admission:\n{r}", profile.name(), style.label())
        });
        // The collapser must stay sound on every real design: simulated +
        // retired classes partition the site list.
        let c = collapse_fault_sites(&nl);
        assert_eq!(c.simulate.len() + c.static_benign.len(), c.num_representatives());
        assert!(c.num_simulated() <= c.num_sites());
    }
}
