//! Benchmark harness for the DATE'25 sequential-SVM paper: shared driver
//! code used by the `table1`, `claims`, `figure1` and `ablations` binaries
//! and by the bench targets.
//!
//! All grid evaluation goes through [`pe_core::engine::ExperimentEngine`]:
//! one trained model per `(dataset, style)` pair, jobs fanned out over
//! scoped threads, results in deterministic Table-I order.

pub mod harness;

use pe_core::engine::{ExperimentEngine, StderrProgress};
use pe_core::pipeline::RunOptions;
use pe_core::report::Table1;

/// The engine for the paper's full evaluation grid (5 datasets × 4 design
/// styles) with the default thread count. Binaries that need memoized
/// models or PDK variants hold on to the engine itself.
#[must_use]
pub fn table1_engine(opts: &RunOptions) -> ExperimentEngine {
    ExperimentEngine::table1_grid(opts.clone()).with_threads(grid_threads())
}

/// Runs the full evaluation grid and collects the rows in the paper's order
/// (baselines first, ours last, per dataset), printing per-row progress to
/// stderr as jobs finish.
#[must_use]
pub fn build_table1(opts: &RunOptions) -> Table1 {
    table1_engine(opts).run_streaming(&mut StderrProgress)
}

/// Fast options for CI-sized runs (fewer simulated samples).
#[must_use]
pub fn quick_options() -> RunOptions {
    RunOptions { max_sim_samples: 60, ..RunOptions::default() }
}

/// Worker threads for grid runs: `PE_THREADS` if set, else the machine's
/// parallelism. Thread count never changes results, only wall-clock.
#[must_use]
pub fn grid_threads() -> usize {
    std::env::var("PE_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| pe_core::engine::default_threads(usize::MAX))
}

/// The stride that subsamples at most `cap` evenly spaced items out of
/// `total` via `step_by`: `ceil(total / cap)`.
///
/// Flooring the division here was a real bug: `(total / cap).max(1)` keeps
/// up to `2 * cap - 1` items (1000 sites at cap 400 → step 2 → 500 kept);
/// the ceiling guarantees `ceil(total / step) <= cap`. A `cap` of zero
/// degrades to keeping everything (step 1) rather than dividing by zero.
#[must_use]
pub fn sample_step(total: usize, cap: usize) -> usize {
    if cap == 0 {
        1
    } else {
        total.div_ceil(cap).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::sample_step;

    #[test]
    fn sample_step_respects_the_cap() {
        // The motivating case: flooring kept 500 of 1000 at cap 400.
        assert_eq!(sample_step(1000, 400), 3);
        for (total, cap) in [(1000, 400), (1, 1), (7, 3), (64, 64), (65, 64), (10_000, 1)] {
            let step = sample_step(total, cap);
            let kept = (0..total).step_by(step).count();
            assert!(kept <= cap, "{total} sites at cap {cap}: step {step} keeps {kept}");
        }
    }

    #[test]
    fn sample_step_keeps_everything_when_uncapped() {
        assert_eq!(sample_step(123, 0), 1);
        assert_eq!(sample_step(123, 1000), 1);
        assert_eq!(sample_step(0, 10), 1);
    }
}
