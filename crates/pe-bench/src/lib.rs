//! Benchmark harness for the DATE'25 sequential-SVM paper: shared driver
//! code used by the `table1`, `claims`, `figure1` and `ablations` binaries
//! and by the Criterion benches.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use pe_core::pipeline::{run_experiment, RunOptions};
use pe_core::report::Table1;
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;

/// Runs the full evaluation grid (5 datasets × 4 design styles) and collects
/// the rows in the paper's order (baselines first, ours last, per dataset).
#[must_use]
pub fn build_table1(opts: &RunOptions) -> Table1 {
    let mut table = Table1::default();
    for profile in UciProfile::all() {
        for style in DesignStyle::all() {
            let row = run_experiment(profile, style, opts);
            eprintln!("  done: {}", row.one_line());
            table.push(row);
        }
    }
    table
}

/// Fast options for CI-sized runs (fewer simulated samples).
#[must_use]
pub fn quick_options() -> RunOptions {
    RunOptions { max_sim_samples: 60, ..RunOptions::default() }
}
