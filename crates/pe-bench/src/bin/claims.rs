//! Checks every derived claim of the paper against the reproduced Table I:
//! energy ratios (10.6x / 5.4x / 3.46x, 6.5x average), accuracy deltas
//! (+2.02 / +3.13 / +4.38 points), the PenDigits exception, and the printed-
//! battery power feasibility (peak 22.9 mW / avg 13.58 mW vs Molex 30 mW).
//!
//! Usage: `cargo run --release -p pe-bench --bin claims`

use pe_bench::build_table1;
use pe_cells::Battery;
use pe_core::pipeline::RunOptions;
use pe_core::styles::DesignStyle;

fn main() {
    let opts = RunOptions::default();
    let table = build_table1(&opts);
    println!("\n# Derived claims (paper vs reproduced)\n");
    let claims = [
        (DesignStyle::ParallelSvm, 10.6, 2.02),
        (DesignStyle::ApproxParallelSvm, 5.4, 3.13),
        (DesignStyle::ParallelMlp, 3.46, 4.38),
    ];
    let mut ratios = Vec::new();
    for (style, paper_ratio, paper_delta) in claims {
        let ratio = table.energy_improvement_over(style).unwrap_or(f64::NAN);
        let delta = table.accuracy_delta_over(style).unwrap_or(f64::NAN);
        ratios.push(ratio);
        println!(
            "vs {:<9}  energy improvement: paper {:>5.2}x | measured {:>5.2}x     accuracy delta: paper +{:>4.2} | measured {:+.2}",
            style.label(), paper_ratio, ratio, paper_delta, delta
        );
    }
    let avg = ratios.iter().sum::<f64>() / ratios.len() as f64;
    println!("average energy improvement: paper 6.50x | measured {avg:.2}x");

    if let Some((peak, avgp)) = table.ours_power_profile() {
        println!("\nours power: paper peak 22.9 mW, avg 13.58 mW | measured peak {peak:.1} mW, avg {avgp:.2} mW");
    }
    if let Some(e) = table.ours_average_energy() {
        println!("ours average energy: paper 2.46 mJ | measured {e:.2} mJ");
    }
    let battery = Battery::molex_30mw();
    let f = table.battery_feasibility(&battery);
    println!(
        "\n{}: ours powered {}/{} | state of the art powered {}/{} (paper: 5/5 vs 4/13)",
        battery.name(),
        f.ours_ok,
        f.ours_total,
        f.sota_ok,
        f.sota_total
    );
    // The PenDigits exception: OvO with many support vectors out-scores OvR.
    if let (Some(ours), Some(sota)) = (
        table.row("PenDigits", DesignStyle::SequentialSvm),
        table.row("PenDigits", DesignStyle::ParallelSvm),
    ) {
        println!(
            "\nPenDigits exception: ours {:.1}% vs SVM [2] {:.1}% (paper: 93.1% vs 97.8% — [2] wins accuracy, at {:.1} cm2 area)",
            ours.accuracy_pct, sota.accuracy_pct, sota.area_cm2
        );
    }
    for (style, _, _) in claims {
        for ours in table.style_rows(DesignStyle::SequentialSvm) {
            if let Some(base) = table.row(&ours.dataset, style) {
                let who = if ours.energy_mj < base.energy_mj { "ours" } else { base.style.label() };
                println!(
                    "energy winner on {:<12} vs {:<9}: {}",
                    ours.dataset,
                    base.style.label(),
                    who
                );
            }
        }
    }
}
