//! Yield/robustness study: single-stuck-at fault campaign on a parallel
//! classifier datapath. Printed fabrication defects are frequent; this
//! measures how many faults actually flip classifications on a real
//! workload (faults masked by quantization/argmax margins are benign).
//!
//! Usage: `cargo run --release -p pe-bench --bin faults [max_faults]`

use pe_core::pipeline::{build_netlist, prepare_model, PreparedModel, RunOptions};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;
use pe_sim::faults::{enumerate_fault_sites, fault_campaign_comb};

fn main() {
    let max_faults: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(400);
    let opts = RunOptions::default();
    let prepared = prepare_model(UciProfile::Cardio, DesignStyle::ParallelSvm, &opts);
    let nl = build_netlist(DesignStyle::ParallelSvm, &prepared);
    let PreparedModel::Svm(q) = &prepared.model else { unreachable!() };

    // Workload: 40 real test samples.
    let workload: Vec<Vec<(String, i64)>> = prepared
        .test
        .features()
        .iter()
        .take(40)
        .map(|x| {
            q.quantize_input(x)
                .iter()
                .enumerate()
                .map(|(i, &v)| (format!("x{i}"), v))
                .collect()
        })
        .collect();
    let mut sites = enumerate_fault_sites(&nl);
    let step = (sites.len() / max_faults).max(1);
    sites = sites.into_iter().step_by(step).collect();
    eprintln!(
        "fault campaign: {} sites (of {} cells), {} workload vectors...",
        sites.len(),
        nl.num_cells(),
        workload.len()
    );
    let report = fault_campaign_comb(&nl, &sites, &workload, "class").expect("acyclic");
    println!("# Single-stuck-at fault campaign (Cardio, parallel SVM [2])\n");
    println!("faults simulated : {}", report.total);
    println!("critical         : {} ({:.1} %)", report.critical, 100.0 * report.criticality());
    println!("benign (masked)  : {}", report.benign);
    println!("\nReading: a substantial fraction of printed defects never flips a");
    println!("prediction — classification margins absorb them — which is why bespoke");
    println!("printed classifiers tolerate printing yields that would kill a CPU.");
}
