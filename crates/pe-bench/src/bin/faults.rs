//! Yield/robustness study: single-stuck-at fault campaigns on the Table-I
//! classifier circuits. Printed fabrication defects are frequent; this
//! measures how many faults actually flip classifications on a real
//! workload (faults masked by quantization/argmax margins are benign) — on
//! both a fully-parallel baseline datapath **and** the paper's headline
//! sequential SVM, whose clocked campaign judges faults per classification
//! under the per-classification reset protocol.
//!
//! Campaigns run PPSFP-style (`pe_sim::faults`): up to `64 * W` fault sites
//! per bit-sliced slab (the lane width `W` auto-picked per shard, or forced
//! with `--width`), one faulty machine per lane, every workload pattern
//! driven broadcast — and the site list is additionally sharded across
//! `parallel_map` workers in slab-aligned chunks, so the campaign
//! parallelizes across threads *and* lanes. Each worker schedules one
//! simulator and reuses it for its whole shard via per-lane force/release.
//!
//! Usage: `cargo run --release -p pe-bench --bin faults
//!         [max_sites] [--compare] [--collapse] [--width 1|2|4|8] [--events]`
//!
//! `--compare` re-runs the same sites through the two reference paths — the
//! previous pattern-parallel site-serial campaign, and (on a subsample) the
//! rebuild-per-site serial oracle — asserts the reports agree, and prints
//! the measured speedups. Verdicts are width-invariant, so `--compare` at a
//! widened occupancy checks the wide engine against both references.
//! `--compare` also cross-checks **toggle/activity counters** (not just
//! classifications) between the scalar and bit-sliced engines on the same
//! workload batch; `--events` adds the event-driven (dirty-cell worklist)
//! engine to that cross-check. Every campaign additionally reports its
//! cone-scheduling stats: chunks evaluated through their fanout cone vs
//! full-sweep fallbacks, and the cell evaluations saved vs cone-off.
//!
//! `--collapse` additionally runs the statically+workload-collapsed
//! campaign (`pe_sim::collapse`): equivalence classes, unobservable cones
//! and workload-quiescent sites are retired before any lane is pinned, the
//! surviving representatives sweep as usual, and the verdicts are expanded
//! back over the full site list — asserted bit-identical to the
//! uncollapsed report, with the site reduction and wall-clock printed.

use pe_core::engine::{self, ExperimentEngine, Job};
use pe_core::pipeline::{build_netlist, cycles_per_inference, fault_workload, RunOptions};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;
use pe_netlist::Netlist;
use pe_obs::{ProfileRecorder, ProfileSnapshot, SimProfile};
use pe_sim::collapse::{fault_campaign_comb_ppsfp_collapsed, fault_campaign_seq_ppsfp_collapsed};
use pe_sim::faults::{
    enumerate_fault_sites, fault_campaign_comb, fault_campaign_comb_ppsfp_wide,
    fault_campaign_comb_ppsfp_wide_obs, fault_campaign_seq, fault_campaign_seq_ppsfp_wide,
    fault_campaign_seq_ppsfp_wide_obs, oracle, pattern_parallel, ConeMode, ConeStats, FaultReport,
    FaultSite,
};
use pe_sim::{BatchMode, LaneWidth, Simulator};
use std::time::Instant;

/// Workload size: real test samples driven per fault site.
const WORKLOAD: usize = 40;

/// Site cap for the rebuild-per-site oracle timing (it is slow by design).
const ORACLE_CAP: usize = 192;

/// One campaign flavor: combinational (settle per pattern) or sequential
/// (reset + `cycles` ticks per pattern).
#[derive(Clone, Copy)]
enum Flavor {
    Comb,
    Seq { cycles: u64 },
}

/// Splits the site list into per-worker shards whose sizes are multiples of
/// the sweep's lane capacity (except the last) — `64 * W` when a width is
/// forced, 64 otherwise — so no worker simulates half-empty PPSFP sweeps.
fn sweep_aligned_shards(
    sites: &[FaultSite],
    threads: usize,
    width: Option<LaneWidth>,
) -> Vec<Vec<FaultSite>> {
    let lanes = width.map_or(64, LaneWidth::lanes);
    let per_worker = sites.len().div_ceil(threads.max(1)).next_multiple_of(lanes);
    sites.chunks(per_worker.max(lanes)).map(<[_]>::to_vec).collect()
}

fn merge(partials: Vec<FaultReport>) -> FaultReport {
    partials.into_iter().fold(FaultReport { critical: 0, benign: 0, total: 0 }, |acc, r| {
        FaultReport {
            critical: acc.critical + r.critical,
            benign: acc.benign + r.benign,
            total: acc.total + r.total,
        }
    })
}

/// One campaign implementation driven by [`run_sharded`]: the PPSFP
/// default, the pattern-parallel dual, or the rebuild-per-site oracle. The
/// [`LaneWidth`] override only matters to the PPSFP path; the reference
/// paths ignore it.
type CampaignPath = fn(
    &Netlist,
    &[FaultSite],
    &[Vec<(String, i64)>],
    &str,
    Flavor,
    Option<LaneWidth>,
) -> FaultReport;

/// Runs one campaign over site shards on the worker pool and returns the
/// merged report with its wall-clock seconds.
fn run_sharded(
    nl: &Netlist,
    shards: &[Vec<FaultSite>],
    workload: &[Vec<(String, i64)>],
    flavor: Flavor,
    width: Option<LaneWidth>,
    threads: usize,
    path: CampaignPath,
) -> (FaultReport, f64) {
    let t0 = Instant::now();
    let partials = engine::parallel_map(shards, threads, |shard| {
        path(nl, shard, workload, "class", flavor, width)
    });
    (merge(partials), t0.elapsed().as_secs_f64())
}

fn ppsfp_path(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
    flavor: Flavor,
    width: Option<LaneWidth>,
) -> FaultReport {
    match (flavor, width) {
        (Flavor::Comb, None) => fault_campaign_comb(nl, sites, workload, out).expect("acyclic"),
        (Flavor::Comb, Some(w)) => {
            fault_campaign_comb_ppsfp_wide(nl, sites, workload, out, w).expect("acyclic")
        }
        (Flavor::Seq { cycles }, None) => {
            fault_campaign_seq(nl, sites, workload, out, cycles).expect("acyclic")
        }
        (Flavor::Seq { cycles }, Some(w)) => {
            fault_campaign_seq_ppsfp_wide(nl, sites, workload, out, cycles, w).expect("acyclic")
        }
    }
}

fn patpar_path(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
    flavor: Flavor,
    _width: Option<LaneWidth>,
) -> FaultReport {
    match flavor {
        Flavor::Comb => {
            pattern_parallel::fault_campaign_comb(nl, sites, workload, out).expect("acyclic")
        }
        Flavor::Seq { cycles } => {
            pattern_parallel::fault_campaign_seq(nl, sites, workload, out, cycles).expect("acyclic")
        }
    }
}

fn oracle_path(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    out: &str,
    flavor: Flavor,
    _width: Option<LaneWidth>,
) -> FaultReport {
    match flavor {
        Flavor::Comb => oracle::fault_campaign_comb(nl, sites, workload, out).expect("acyclic"),
        Flavor::Seq { cycles } => {
            oracle::fault_campaign_seq(nl, sites, workload, out, cycles).expect("acyclic")
        }
    }
}

/// Runs the whole (unsharded) campaign through the `_obs` path at one
/// explicit [`ConeMode`] with a live [`ProfileRecorder`] installed,
/// returning the report, the campaign's exit work accounting, and the
/// recorder's view of the same run (the reconciliation pair).
fn cone_run(
    nl: &Netlist,
    sites: &[FaultSite],
    workload: &[Vec<(String, i64)>],
    flavor: Flavor,
    width: LaneWidth,
    mode: ConeMode,
) -> (FaultReport, ConeStats, ProfileSnapshot) {
    let recorder = ProfileRecorder::new();
    let profile = Some(&recorder as &dyn SimProfile);
    let (report, stats) = match flavor {
        Flavor::Comb => {
            fault_campaign_comb_ppsfp_wide_obs(nl, sites, workload, "class", width, mode, profile)
                .expect("acyclic")
        }
        Flavor::Seq { cycles } => fault_campaign_seq_ppsfp_wide_obs(
            nl, sites, workload, "class", cycles, width, mode, profile,
        )
        .expect("acyclic"),
    };
    (report, stats, recorder.snapshot())
}

/// The `--compare` gate for the observability layer: the [`SimProfile`]
/// recorder fed chunk-by-chunk during the campaign must reconcile exactly
/// with the campaign's exit-summary [`ConeStats`] — same chunk counts, same
/// cone/fallback split, same total cell evaluations (golden run included).
fn assert_profile_reconciles(label: &str, prof: &ProfileSnapshot, stats: &ConeStats, sites: usize) {
    assert_eq!(prof.chunks, stats.chunks as u64, "{label}: recorder chunk count");
    assert_eq!(prof.cone_chunks, stats.cone_chunks as u64, "{label}: recorder cone chunks");
    assert_eq!(
        prof.fallback_chunks, stats.fallback_chunks as u64,
        "{label}: recorder fallback chunks"
    );
    assert_eq!(prof.campaign_cell_evals, stats.cell_evals, "{label}: recorder cell evals");
    assert_eq!(prof.campaign_sites, sites as u64, "{label}: recorder site count");
}

/// The counter gate `--compare` was missing: classifications *and*
/// toggle/activity counters must be bit-identical between the scalar
/// reference and the bit-sliced full-sweep engine at the same width — and,
/// with `--events`, the event-driven worklist engine too.
fn activity_crosscheck(
    nl: &Netlist,
    workload: &[Vec<(String, i64)>],
    flavor: Flavor,
    width: LaneWidth,
    events: bool,
) {
    let vectors: Vec<Vec<i64>> =
        workload.iter().map(|e| e.iter().map(|(_, v)| *v).collect()).collect();
    let cycles = match flavor {
        Flavor::Comb => 0,
        Flavor::Seq { cycles } => cycles,
    };
    let run = |mode: BatchMode, ev: bool| {
        let mut sim = Simulator::new(nl).expect("acyclic");
        sim.set_batch_mode(mode);
        sim.set_lane_width(width);
        sim.set_event_driven(ev);
        sim.enable_activity();
        let batch = sim.run_batch(&vectors, cycles, "class");
        (batch, sim.activity())
    };
    let (want_batch, want_act) = run(BatchMode::Scalar, false);
    let (full_batch, full_act) = run(BatchMode::BitSliced, false);
    assert_eq!(full_batch, want_batch, "bit-sliced batch diverged from scalar");
    assert_eq!(full_act, want_act, "bit-sliced toggle counters diverged from scalar");
    if events {
        let (ev_batch, ev_act) = run(BatchMode::BitSliced, true);
        assert_eq!(ev_batch, want_batch, "event-driven batch diverged from scalar");
        assert_eq!(ev_act, want_act, "event-driven toggle counters diverged from scalar");
    }
    println!(
        "activity check   : scalar == bit-sliced{} ({} toggles over {} vectors)",
        if events { " == event-driven" } else { "" },
        want_act.total_toggles(),
        vectors.len()
    );
}

/// The CLI knobs, shared verbatim by both campaign styles.
struct CampaignOpts {
    max_sites: usize,
    compare: bool,
    collapse: bool,
    events: bool,
    width: Option<LaneWidth>,
    threads: usize,
}

fn campaign(
    engine: &ExperimentEngine,
    profile: UciProfile,
    style: DesignStyle,
    opts: &CampaignOpts,
) {
    let CampaignOpts { max_sites, compare, collapse, events, width, threads } = *opts;
    let prepared = engine.prepared(profile, style);
    let nl = build_netlist(style, &prepared);
    let flavor = match style {
        DesignStyle::SequentialSvm => {
            Flavor::Seq { cycles: cycles_per_inference(style, &prepared) }
        }
        _ => Flavor::Comb,
    };
    let workload = fault_workload(&prepared, WORKLOAD);
    let mut sites = enumerate_fault_sites(&nl);
    let all = sites.len();
    let step = pe_bench::sample_step(all, max_sites);
    sites = sites.into_iter().step_by(step).collect();
    let shards = sweep_aligned_shards(&sites, threads, width);
    eprintln!(
        "[{} {}] {} sites (of {} candidates), {} workload vectors, {} threads, {} shards, \
         width {}...",
        profile.name(),
        style.label(),
        sites.len(),
        all,
        workload.len(),
        threads,
        shards.len(),
        width.map_or("auto".to_owned(), |w| format!("{w} ({} lanes/sweep)", w.lanes())),
    );
    let (report, secs) = run_sharded(&nl, &shards, &workload, flavor, width, threads, ppsfp_path);

    let kind = match flavor {
        Flavor::Comb => "combinational".to_owned(),
        Flavor::Seq { cycles } => format!("sequential, {cycles} cycles/classification"),
    };
    println!(
        "# Single-stuck-at fault campaign ({}, {}; {})\n",
        profile.name(),
        style.label(),
        kind
    );
    println!("faults simulated : {} ({:.2} s PPSFP)", report.total, secs);
    println!("critical         : {} ({:.1} %)", report.critical, 100.0 * report.criticality());
    println!("benign (masked)  : {}", report.benign);

    // Cone-scheduling accounting: one unsharded pass with cones on and one
    // with cones off, both asserted bit-identical to the sharded campaign.
    let eff_width = width.unwrap_or_else(|| LaneWidth::for_sites(sites.len()));
    let (auto_report, auto_stats, auto_prof) =
        cone_run(&nl, &sites, &workload, flavor, eff_width, ConeMode::Auto);
    assert_eq!(auto_report, report, "cone-scheduled report must match the sharded campaign");
    let (never_report, never_stats, never_prof) =
        cone_run(&nl, &sites, &workload, flavor, eff_width, ConeMode::Never);
    assert_eq!(never_report, report, "cone-off report must match the sharded campaign");
    let avoided =
        100.0 * (1.0 - auto_stats.cell_evals as f64 / never_stats.cell_evals.max(1) as f64);
    println!(
        "cone scheduling  : {}/{} chunks through fanout cones ({} full-sweep fallback)",
        auto_stats.cone_chunks, auto_stats.chunks, auto_stats.fallback_chunks
    );
    println!(
        "cell evaluations : {} cone-scheduled vs {} full-sweep ({:.1} % avoided)",
        auto_stats.cell_evals, never_stats.cell_evals, avoided
    );
    // The same numbers as seen *during* the run by the SimProfile hook —
    // what a live dashboard would read mid-campaign.
    println!(
        "live profile     : {} chunks over {} sites, {} cell evals (SimProfile recorder)",
        auto_prof.chunks, auto_prof.campaign_sites, auto_prof.campaign_cell_evals
    );
    if compare {
        assert_profile_reconciles("cone auto", &auto_prof, &auto_stats, sites.len());
        assert_profile_reconciles("cone never", &never_prof, &never_stats, sites.len());
        println!("profile check    : SimProfile recorder == exit ConeStats (auto and never)");
    }

    if collapse {
        // Collapsed campaign: classes + unobservable + workload-quiet sites
        // retired, representatives swept, verdicts expanded back. The report
        // must be indistinguishable from the full campaign's.
        let t0 = Instant::now();
        let (creport, cstats) = match flavor {
            Flavor::Comb => {
                fault_campaign_comb_ppsfp_collapsed(&nl, &sites, &workload, "class", eff_width)
                    .expect("acyclic")
            }
            Flavor::Seq { cycles } => fault_campaign_seq_ppsfp_collapsed(
                &nl, &sites, &workload, "class", cycles, eff_width,
            )
            .expect("acyclic"),
        };
        let c_secs = t0.elapsed().as_secs_f64();
        assert_eq!(creport, report, "collapsed report must be bit-identical to the full campaign");
        let t1 = Instant::now();
        let _ = ppsfp_path(&nl, &sites, &workload, "class", flavor, Some(eff_width));
        let f_secs = t1.elapsed().as_secs_f64();
        println!(
            "fault collapsing : {} sites -> {} simulated ({} classes, {} statically benign, \
             {} workload-quiet; {:.1} % collapsed away)",
            cstats.sites,
            cstats.simulated,
            cstats.classes,
            cstats.static_benign,
            cstats.workload_benign,
            100.0 * cstats.reduction(),
        );
        println!(
            "collapsed run    : {:.3} s vs {:.3} s uncollapsed ({:.2}x), report bit-identical",
            c_secs,
            f_secs,
            f_secs / c_secs.max(1e-9),
        );
    }

    if compare {
        let (pp, pp_secs) =
            run_sharded(&nl, &shards, &workload, flavor, width, threads, patpar_path);
        assert_eq!(pp, report, "pattern-parallel report must match PPSFP");
        let oracle_sites: Vec<FaultSite> =
            sites.iter().copied().step_by(pe_bench::sample_step(sites.len(), ORACLE_CAP)).collect();
        let oracle_shards = sweep_aligned_shards(&oracle_sites, threads, width);
        let (ora, ora_secs) =
            run_sharded(&nl, &oracle_shards, &workload, flavor, width, threads, oracle_path);
        let (ppsfp_sub, ppsfp_sub_secs) =
            run_sharded(&nl, &oracle_shards, &workload, flavor, width, threads, ppsfp_path);
        assert_eq!(ora, ppsfp_sub, "oracle report must match PPSFP on the subsample");
        let per_site = |s: f64, n: usize| 1e6 * s / n.max(1) as f64;
        println!("\nper-site cost    : {:.1} µs PPSFP | {:.1} µs pattern-parallel | {:.1} µs rebuild oracle",
            per_site(secs, report.total),
            per_site(pp_secs, pp.total),
            per_site(ora_secs, ora.total));
        println!(
            "speedup          : {:.1}x vs pattern-parallel, {:.0}x vs serial-site rebuild oracle",
            pp_secs / secs.max(1e-9),
            per_site(ora_secs, ora.total) / per_site(ppsfp_sub_secs, ppsfp_sub.total).max(1e-9)
        );
        activity_crosscheck(
            &nl,
            &workload,
            flavor,
            width.unwrap_or_else(|| LaneWidth::auto_for_netlist(&nl)),
            events,
        );
    }
    println!();
}

fn main() {
    let mut max_sites: usize = 0; // 0 = the full site list
    let mut compare = false;
    let mut collapse = false;
    let mut events = false;
    let mut width: Option<LaneWidth> = None;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--compare" {
            compare = true;
        } else if arg == "--collapse" {
            collapse = true;
        } else if arg == "--events" {
            events = true;
        } else if arg == "--width" {
            width = match it.next().as_deref().and_then(LaneWidth::parse) {
                Some(w) => Some(w),
                None => {
                    eprintln!("faults: --width needs 1|2|4|8 (words) or 64|128|256|512 (lanes)");
                    std::process::exit(2);
                }
            };
        } else if let Ok(n) = arg.parse() {
            max_sites = n;
        } else {
            eprintln!(
                "usage: faults [max_sites] [--compare] [--collapse] [--width 1|2|4|8] [--events]"
            );
            std::process::exit(2);
        }
    }
    let profile = UciProfile::Cardio;
    let engine = ExperimentEngine::new(
        vec![
            Job::new(profile, DesignStyle::ParallelSvm),
            Job::new(profile, DesignStyle::SequentialSvm),
        ],
        RunOptions::default(),
    );
    let opts = CampaignOpts {
        max_sites,
        compare,
        collapse,
        events,
        width,
        threads: pe_bench::grid_threads(),
    };
    // The fully-parallel baseline (combinational campaign) and the paper's
    // sequential SVM (clocked campaign) — the headline design's robustness
    // was previously never measured here.
    campaign(&engine, profile, DesignStyle::ParallelSvm, &opts);
    campaign(&engine, profile, DesignStyle::SequentialSvm, &opts);
    println!("Reading: a substantial fraction of printed defects never flips a");
    println!("prediction — classification margins absorb them — which is why bespoke");
    println!("printed classifiers tolerate printing yields that would kill a CPU.");
}
