//! Yield/robustness study: single-stuck-at fault campaign on a parallel
//! classifier datapath. Printed fabrication defects are frequent; this
//! measures how many faults actually flip classifications on a real
//! workload (faults masked by quantization/argmax margins are benign).
//!
//! The model comes from the shared [`ExperimentEngine`] cache and the
//! campaign fans out over the engine's thread helper, one shard per worker.
//! Within a shard, one bit-sliced simulator is scheduled once and reused for
//! every fault site via force/release, driving 64 workload patterns per
//! machine word — so the campaign parallelizes across threads *and* lanes.
//!
//! Usage: `cargo run --release -p pe-bench --bin faults [max_faults]`

use pe_core::engine::{self, ExperimentEngine};
use pe_core::pipeline::{build_netlist, PreparedModel, RunOptions};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;
use pe_sim::faults::{enumerate_fault_sites, fault_campaign_comb, FaultReport, FaultSite};

fn main() {
    let max_faults: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(400);
    let engine = ExperimentEngine::single(
        UciProfile::Cardio,
        DesignStyle::ParallelSvm,
        RunOptions::default(),
    );
    let prepared = engine.prepared(UciProfile::Cardio, DesignStyle::ParallelSvm);
    let nl = build_netlist(DesignStyle::ParallelSvm, &prepared);
    let PreparedModel::Svm(q) = &prepared.model else { unreachable!() };

    // Workload: 40 real test samples.
    let workload: Vec<Vec<(String, i64)>> = prepared
        .test
        .features()
        .iter()
        .take(40)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect();
    let mut sites = enumerate_fault_sites(&nl);
    let step = (sites.len() / max_faults).max(1);
    sites = sites.into_iter().step_by(step).collect();
    let threads = pe_bench::grid_threads();
    eprintln!(
        "fault campaign: {} sites (of {} cells), {} workload vectors, {} threads...",
        sites.len(),
        nl.num_cells(),
        workload.len(),
        threads
    );
    // Shard the site list across workers; each shard is an independent
    // campaign (one reused force/release simulator) and the totals merge by
    // addition.
    let shards: Vec<Vec<FaultSite>> =
        sites.chunks(sites.len().div_ceil(threads).max(1)).map(<[_]>::to_vec).collect();
    let partials = engine::parallel_map(&shards, threads, |shard| {
        fault_campaign_comb(&nl, shard, &workload, "class").expect("acyclic")
    });
    let report =
        partials.into_iter().fold(FaultReport { critical: 0, benign: 0, total: 0 }, |acc, r| {
            FaultReport {
                critical: acc.critical + r.critical,
                benign: acc.benign + r.benign,
                total: acc.total + r.total,
            }
        });
    println!("# Single-stuck-at fault campaign (Cardio, parallel SVM [2])\n");
    println!("faults simulated : {}", report.total);
    println!("critical         : {} ({:.1} %)", report.critical, 100.0 * report.criticality());
    println!("benign (masked)  : {}", report.benign);
    println!("\nReading: a substantial fraction of printed defects never flips a");
    println!("prediction — classification margins absorb them — which is why bespoke");
    println!("printed classifiers tolerate printing yields that would kill a CPU.");
}
