//! The "missing figure" of the 2-page paper: energy of the sequential vs
//! fully-parallel design as the class count grows, on controlled synthetic
//! data. Locates where the 6.5x average of Table I comes from (OvO hardware
//! grows ~n² while the folded engine grows only in storage).
//!
//! Usage: `cargo run --release -p pe-bench --bin scaling`

use pe_cells::{EgfetLibrary, TechParams};
use pe_core::sweep::class_count_sweep;

fn main() {
    let lib = EgfetLibrary::standard();
    let tech = TechParams::standard();
    println!("# Scaling study: class count vs energy (m = 12 features)\n");
    println!("| classes | seq E (mJ) | par E (mJ) | ratio | seq area (cm2) | par area (cm2) |");
    println!("|---|---|---|---|---|---|");
    for p in class_count_sweep(&[2, 3, 4, 6, 8, 10], 12, 24, &lib, &tech, 7) {
        println!(
            "| {} | {:.3} | {:.3} | {:.2}x | {:.1} | {:.1} |",
            p.n_classes,
            p.seq_energy_mj,
            p.par_energy_mj,
            p.energy_ratio(),
            p.seq_area_cm2,
            p.par_area_cm2
        );
    }
    println!("\nReading: the parallel baseline instantiates n(n-1)/2 datapaths, so its");
    println!("energy and area grow roughly quadratically in the class count, while the");
    println!("sequential engine only grows its MUX-ROM storage — the mechanism behind");
    println!("the paper's PenDigits (n=10) row, where the gap is widest.");
}
