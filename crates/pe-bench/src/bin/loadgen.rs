//! `loadgen` — load generator for the `pe-serve` classification service.
//!
//! Three drive modes:
//!
//! `--events` routes every in-process service through the event-driven
//! (dirty-cell worklist) sweep mode; with `--ratio` it additionally
//! measures the low-activity payoff on a repeated-request stream.
//!
//! * **Ratio** (`--ratio`, part of the default run): closed-loop saturation
//!   throughput of the lane-coalescing service (up to `64 * W` requests per
//!   sweep; `--width` forces the slab width) versus a
//!   one-request-per-`run_batch` service (`batch_max = 1`) — the measured
//!   payoff of batch coalescing. `--expect-ratio R` turns the measurement
//!   into a gate (exit 1 below `R`), and the measured figures land in
//!   `BENCH_serve.json` at the workspace root. The main saturation run
//!   prints one line per `--sample-ms` interval — windowed throughput plus
//!   the queue-wait / service-time quantiles of just that interval
//!   (`HistSnapshot::delta_since`) — and the run is repeated with the
//!   observability layer disabled (`trace_capacity 0`, no `SimProfile`) to
//!   measure the instrumentation cost, recorded as `obs_overhead_pct`.
//! * **Sweep** (`--sweep`, part of the default run): open-loop arrival
//!   rates × batch deadlines, reporting served throughput, batch fill and
//!   p50/p99 latency per cell — the latency/efficiency trade-off curve of
//!   the deadline knob.
//! * **TCP** (`--tcp ADDR`): hammers a running `pe-serve` binary over the
//!   wire protocol with `--conns` concurrent connections, checks every
//!   reply, **scrapes the `metrics` exposition mid-run** (failing unless
//!   the per-model series are present and non-zero), then reads `stats`
//!   and **fails if the server saw any verify mismatches**. `--shutdown`
//!   asks the server to drain and exit at the end (the CI smoke flow).
//!
//! In-process modes serve real held-out test samples; TCP mode generates
//! uniform `[0,1)` feature vectors (integer-vs-gate equivalence holds for
//! every input, so random traffic is as strong a check as real traffic).

use pe_core::engine::{NullSink, ProgressSink, StderrProgress};
use pe_core::pipeline::RunOptions;
use pe_serve::{MetricsSnapshot, ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use pe_sim::LaneWidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    key: ModelKey,
    mode: ServeMode,
    requests: usize,
    batch_max: usize,
    width: Option<LaneWidth>,
    events: bool,
    ratio: bool,
    sweep: bool,
    expect_ratio: Option<f64>,
    tcp: Option<String>,
    conns: usize,
    shutdown: bool,
    sample_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        // The paper's own design style on the biggest dataset: the most
        // server-shaped cell of the grid (10 classes -> 10 cycles/request).
        key: ModelKey::parse("pendigits:seq").expect("default key parses"),
        mode: ServeMode::Verify,
        requests: 20_000,
        // One full 8-word slab per run_batch call (a single 512-lane sweep
        // at the default auto width): amortizes simulator construction past
        // the single-chunk floor without splitting the batch.
        batch_max: 512,
        width: None,
        events: false,
        ratio: false,
        sweep: false,
        expect_ratio: None,
        tcp: None,
        conns: 16,
        shutdown: false,
        sample_ms: 500,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--key" => args.key = ModelKey::parse(&value("--key")?)?,
            "--mode" => args.mode = ServeMode::parse(&value("--mode")?)?,
            "--requests" => {
                args.requests = value("--requests")?.parse().map_err(|_| "bad --requests")?;
            }
            "--batch-max" => {
                args.batch_max = value("--batch-max")?.parse().map_err(|_| "bad --batch-max")?;
            }
            "--width" => {
                let spec = value("--width")?;
                args.width = Some(
                    LaneWidth::parse(&spec)
                        .ok_or(format!("bad --width {spec:?} (expected 1|2|4|8 words)"))?,
                );
            }
            "--events" => args.events = true,
            "--ratio" => args.ratio = true,
            "--sweep" => args.sweep = true,
            "--expect-ratio" => {
                args.expect_ratio =
                    Some(value("--expect-ratio")?.parse().map_err(|_| "bad --expect-ratio")?);
            }
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--conns" => args.conns = value("--conns")?.parse().map_err(|_| "bad --conns")?,
            "--shutdown" => args.shutdown = true,
            "--sample-ms" => {
                args.sample_ms = value("--sample-ms")?.parse().map_err(|_| "bad --sample-ms")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !args.ratio && !args.sweep && args.tcp.is_none() {
        args.ratio = true;
        args.sweep = true;
    }
    args.requests = args.requests.max(1);
    args.conns = args.conns.max(1);
    Ok(args)
}

/// Held-out test samples for `key`, cycled to `n` vectors.
fn test_vectors(registry: &ModelRegistry, key: ModelKey, n: usize) -> Vec<Vec<f64>> {
    registry.get(key).sample_requests(n)
}

/// Closed-loop saturation: `injectors` threads bulk-submit their whole
/// slice (backpressure paces them against the bounded queue), then wait
/// for every reply. With `sample`, a sampler thread prints one line per
/// interval: windowed throughput plus the queue-wait / service-time
/// quantiles of **just that interval** — per-model shard snapshots
/// subtracted with [`pe_obs::HistSnapshot::delta_since`].
fn saturation_rps(
    registry: &Arc<ModelRegistry>,
    key: ModelKey,
    cfg: ServiceConfig,
    xs: &[Vec<f64>],
    injectors: usize,
    sample: Option<Duration>,
) -> (f64, MetricsSnapshot) {
    let service = Service::start(Arc::clone(registry), cfg);
    let batch_max = service.config().batch_max;
    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut dt = 0.0;
    std::thread::scope(|scope| {
        if let Some(every) = sample {
            let service = &service;
            let done = &done;
            scope.spawn(move || {
                let us = |d: Duration| d.as_secs_f64() * 1e6;
                let shard = service.metrics_store().shard(key);
                let mut prev = shard.snapshot(batch_max);
                let mut prev_t = Instant::now();
                loop {
                    std::thread::sleep(every);
                    let cur = shard.snapshot(batch_max);
                    let stop = done.load(Ordering::Acquire);
                    let served = cur.served - prev.served;
                    if served > 0 {
                        let queue = cur.queue_wait.delta_since(&prev.queue_wait);
                        let svc = cur.service_time.delta_since(&prev.service_time);
                        println!(
                            "    t+{:<5.1}s {:>8.0} req/s  queue p50/p99 {:>7.1}/{:>9.1} µs  \
                             service p50/p99 {:>7.1}/{:>9.1} µs",
                            t0.elapsed().as_secs_f64(),
                            served as f64 / prev_t.elapsed().as_secs_f64(),
                            us(queue.quantile(0.5)),
                            us(queue.quantile(0.99)),
                            us(svc.quantile(0.5)),
                            us(svc.quantile(0.99)),
                        );
                    }
                    if stop {
                        break;
                    }
                    prev = cur;
                    prev_t = Instant::now();
                }
            });
        }
        let handles: Vec<_> = xs
            .chunks(xs.len().div_ceil(injectors))
            .map(|chunk| {
                let service = &service;
                scope.spawn(move || {
                    for t in service.submit_many(key, chunk) {
                        t.and_then(pe_serve::Ticket::wait).expect("saturation request failed");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("injector panicked");
        }
        // Stop the clock before the sampler's final interval drains, so the
        // reported rate covers exactly the injection window.
        dt = t0.elapsed().as_secs_f64();
        done.store(true, Ordering::Release);
    });
    let m = service.metrics();
    service.shutdown();
    (xs.len() as f64 / dt, m)
}

/// The batching payoff: coalesced wide-lane serving vs one-request-per-
/// `run_batch` serving, both at saturation. Records the figures in
/// `BENCH_serve.json` at the workspace root.
fn run_ratio(registry: &Arc<ModelRegistry>, args: &Args) -> f64 {
    let base = ServiceConfig {
        mode: args.mode,
        batch_max: args.batch_max,
        lane_width: args.width,
        event_driven: args.events,
        ..ServiceConfig::default()
    };
    let injectors = 8;
    let xs_batched = test_vectors(registry, args.key, args.requests);
    // The unbatched service is ~batch_max× slower; a smaller sample keeps
    // wall clock sane without changing the per-request cost being measured.
    let xs_single = test_vectors(registry, args.key, (args.requests / 16).max(512));

    let sample =
        if args.sample_ms > 0 { Some(Duration::from_millis(args.sample_ms)) } else { None };
    println!(
        "== batching payoff ({} @ {:?} mode, batch_max {}, saturation) ==",
        args.key.token(),
        args.mode,
        args.batch_max
    );
    // A short discarded pass first: first-touch allocation and frequency
    // ramp-up deflate whichever run goes first by 2x or more, which would
    // otherwise be charged to the headline figure.
    let _ = saturation_rps(registry, args.key, base.clone(), &xs_single, injectors, None);
    let (rps_b, m_b) =
        saturation_rps(registry, args.key, base.clone(), &xs_batched, injectors, sample);
    let (rps_s, m_s) = saturation_rps(
        registry,
        args.key,
        ServiceConfig { batch_max: 1, ..base.clone() },
        &xs_single,
        injectors,
        None,
    );
    println!(
        "  coalesced:            {rps_b:>10.0} req/s  fill {:>5.1}%  p99 {:>8.1} µs  mismatches {}",
        m_b.batch_fill * 100.0,
        m_b.p99.as_secs_f64() * 1e6,
        m_b.verify_mismatches
    );
    println!(
        "  one-per-run_batch:    {rps_s:>10.0} req/s  fill {:>5.1}%  p99 {:>8.1} µs  mismatches {}",
        m_s.batch_fill * 100.0,
        m_s.p99.as_secs_f64() * 1e6,
        m_s.verify_mismatches
    );
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    println!(
        "  decomposition:        queue p50/p99 {:.1}/{:.1} µs, service p50/p99 {:.1}/{:.1} µs \
         (coalesced)",
        us(m_b.queue_p50),
        us(m_b.queue_p99),
        us(m_b.service_p50),
        us(m_b.service_p99)
    );
    let ratio = rps_b / rps_s;
    println!(
        "  batching speedup: {ratio:.1}x  (lane_width {} words, lane_fill {:.1}%, {} sweeps)",
        m_b.lane_width,
        m_b.lane_fill * 100.0,
        m_b.sweeps
    );
    assert_eq!(m_b.verify_mismatches + m_s.verify_mismatches, 0, "verify must never fire");

    // Instrumentation cost: the same saturation workload with the
    // observability layer fully on (the default) vs fully off (no trace
    // ring, no SimProfile clocks). Best-of-two interleaved trials push
    // scheduler noise below the effect being measured.
    let bare_cfg = ServiceConfig { trace_capacity: 0, sim_profile: false, ..base.clone() };
    let mut rps_obs = 0.0f64;
    let mut rps_bare = 0.0f64;
    for _ in 0..2 {
        rps_obs = rps_obs
            .max(saturation_rps(registry, args.key, base.clone(), &xs_batched, injectors, None).0);
        rps_bare = rps_bare.max(
            saturation_rps(registry, args.key, bare_cfg.clone(), &xs_batched, injectors, None).0,
        );
    }
    let obs_overhead_pct = (1.0 - rps_obs / rps_bare) * 100.0;
    println!(
        "  instrumentation cost: {rps_obs:.0} req/s instrumented vs {rps_bare:.0} req/s bare \
         ({obs_overhead_pct:+.2}% throughput)"
    );

    // Low-activity delta: the same request repeated fills every lane of a
    // slab with identical bits, so the event-driven worklist drains after
    // the first sweep's settling — the best case for `--events`. Served
    // predictions must match bit-for-bit either way (Verify mode checks).
    if args.events {
        let xs_low: Vec<Vec<f64>> = vec![xs_batched[0].clone(); args.requests];
        let (rps_full, m_full) = saturation_rps(
            registry,
            args.key,
            ServiceConfig { event_driven: false, ..base.clone() },
            &xs_low,
            injectors,
            None,
        );
        let (rps_ev, m_ev) =
            saturation_rps(registry, args.key, base.clone(), &xs_low, injectors, None);
        assert_eq!(m_full.verify_mismatches + m_ev.verify_mismatches, 0, "verify must never fire");
        println!(
            "  low-activity (repeated request): {rps_ev:.0} req/s event-driven vs {rps_full:.0} \
             full-sweep ({:+.1}%)",
            (rps_ev / rps_full - 1.0) * 100.0
        );
    }

    // Machine-readable record for the acceptance gates and the README.
    let json = format!(
        "{{\n  \"workload\": \"{} @ {:?} mode, {} requests, batch_max {}, saturation\",\n  \
         \"coalesced_rps\": {:.0},\n  \"single_rps\": {:.0},\n  \"batching_speedup\": {:.2},\n  \
         \"coalesced_p99_us\": {:.1},\n  \"single_p99_us\": {:.1},\n  \
         \"coalesced_queue_p50_us\": {:.1},\n  \"coalesced_queue_p99_us\": {:.1},\n  \
         \"coalesced_service_p50_us\": {:.1},\n  \"coalesced_service_p99_us\": {:.1},\n  \
         \"batch_fill\": {:.3},\n  \"lane_width_words\": {},\n  \"lane_fill\": {:.3},\n  \
         \"sweeps\": {},\n  \
         \"instrumented_rps\": {:.0},\n  \"bare_rps\": {:.0},\n  \
         \"obs_overhead_pct\": {:.2}\n}}\n",
        args.key.token(),
        args.mode,
        args.requests,
        args.batch_max,
        rps_b,
        rps_s,
        ratio,
        m_b.p99.as_secs_f64() * 1e6,
        m_s.p99.as_secs_f64() * 1e6,
        us(m_b.queue_p50),
        us(m_b.queue_p99),
        us(m_b.service_p50),
        us(m_b.service_p99),
        m_b.batch_fill,
        m_b.lane_width,
        m_b.lane_fill,
        m_b.sweeps,
        rps_obs,
        rps_bare,
        obs_overhead_pct,
    );
    // Anchor to the workspace root: cargo runs bin targets with varying cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("loadgen: cannot write BENCH_serve.json: {e}");
    } else {
        println!("  wrote BENCH_serve.json");
    }
    ratio
}

/// Open-loop arrival sweep: rates × deadlines, one fresh service per cell.
fn run_sweep(registry: &Arc<ModelRegistry>, args: &Args) {
    let rates = [2_000u64, 10_000, 50_000];
    let deadlines =
        [Duration::from_micros(200), Duration::from_millis(1), Duration::from_millis(5)];
    println!("== open-loop sweep ({} @ {:?} mode) ==", args.key.token(), args.mode);
    println!(
        "  {:>9}  {:>9}  {:>8}  {:>8}  {:>6}  {:>9}  {:>9}",
        "rate r/s", "deadline", "served", "dropped", "fill%", "p50 µs", "p99 µs"
    );
    for &rate in &rates {
        let n = ((rate as f64 * 0.25) as usize).clamp(200, 8_000);
        let xs = test_vectors(registry, args.key, n);
        for &deadline in &deadlines {
            let service = Service::start(
                Arc::clone(registry),
                ServiceConfig {
                    mode: args.mode,
                    batch_deadline: deadline,
                    event_driven: args.events,
                    ..ServiceConfig::default()
                },
            );
            let interval = Duration::from_secs_f64(1.0 / rate as f64);
            let mut tickets = Vec::with_capacity(n);
            let mut dropped = 0usize;
            let start = Instant::now();
            for (i, x) in xs.iter().enumerate() {
                let due = start + interval * i as u32;
                while Instant::now() < due {
                    std::hint::spin_loop();
                }
                // Open loop: never block the arrival process on the queue.
                match service.try_submit(args.key, x) {
                    Ok(t) => tickets.push(t),
                    Err(_) => dropped += 1,
                }
            }
            for t in tickets {
                let _ = t.wait();
            }
            let m = service.metrics();
            println!(
                "  {:>9}  {:>8.1}ms  {:>8}  {:>8}  {:>6.1}  {:>9.1}  {:>9.1}",
                rate,
                deadline.as_secs_f64() * 1e3,
                m.served,
                dropped,
                m.batch_fill * 100.0,
                m.p50.as_secs_f64() * 1e6,
                m.p99.as_secs_f64() * 1e6
            );
            service.shutdown();
        }
    }
}

/// Scrapes the `metrics` exposition from a running server (reading to the
/// `# EOF` sentinel) and fails unless the per-model series for `key` are
/// present and non-zero — the CI smoke assertion that the observability
/// plumbing is actually live, not just parseable.
fn scrape_metrics(addr: &str, key: ModelKey) -> Result<(), String> {
    // Let the classify connections land some traffic first, so the scrape
    // reads a genuinely mid-run exposition rather than a cold server.
    std::thread::sleep(Duration::from_millis(200));
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    writeln!(writer, "metrics").map_err(|e| format!("send: {e}"))?;
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err(format!("metrics reply ended before # EOF:\n{text}"));
        }
        let done = line.trim_end() == "# EOF";
        text.push_str(&line);
        if done {
            break;
        }
    }
    let model = key.token();
    let series_value = |name: &str| -> Option<f64> {
        let prefix = format!("{name}{{model=\"{model}\"}} ");
        text.lines().find_map(|l| l.strip_prefix(&prefix)).and_then(|v| v.parse().ok())
    };
    for name in ["pe_submitted_total", "pe_served_total", "pe_latency_us_count"] {
        let v = series_value(name)
            .ok_or_else(|| format!("metrics exposition missing {name} for {model}"))?;
        if v <= 0.0 {
            return Err(format!("mid-run {name}{{model=\"{model}\"}} is {v}, expected non-zero"));
        }
    }
    println!(
        "tcp: mid-run metrics scrape ok ({} series; {:.0} served so far)",
        text.lines().filter(|l| !l.starts_with('#')).count(),
        series_value("pe_served_total").unwrap_or(0.0),
    );
    Ok(())
}

/// Drives a running `pe-serve` over TCP; returns an error message on any
/// failed reply, a failed mid-run `metrics` scrape, or server-side verify
/// mismatches.
fn run_tcp(addr: &str, args: &Args) -> Result<(), String> {
    let n_features = args.key.profile.spec().n_features;
    let mut rng = StdRng::seed_from_u64(0x10adf3ed);
    let per_conn = args.requests.div_ceil(args.conns);
    let vectors: Vec<Vec<f64>> = (0..args.conns * per_conn)
        .map(|_| (0..n_features).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let t0 = Instant::now();
    let results: Vec<Result<usize, String>> = std::thread::scope(|scope| {
        // While the connection threads hammer the server, one extra thread
        // scrapes the `metrics` exposition mid-run.
        let scrape = scope.spawn(|| scrape_metrics(addr, args.key));
        let handles: Vec<_> = vectors
            .chunks(per_conn)
            .map(|chunk| {
                scope.spawn(move || -> Result<usize, String> {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut reader = BufReader::new(
                        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
                    );
                    let mut writer = stream;
                    let mut reply = String::new();
                    for x in chunk {
                        let line = pe_serve::protocol::format_classify(args.key, x);
                        writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
                        reply.clear();
                        reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
                        if !reply.starts_with("ok ") {
                            return Err(format!("unexpected reply {:?}", reply.trim_end()));
                        }
                    }
                    Ok(chunk.len())
                })
            })
            .collect();
        let mut results: Vec<Result<usize, String>> =
            handles.into_iter().map(|h| h.join().expect("connection thread panicked")).collect();
        results.push(scrape.join().expect("metrics scrape thread panicked").map(|()| 0));
        results
    });
    let dt = t0.elapsed().as_secs_f64();
    let mut total = 0usize;
    for r in results {
        total += r?;
    }

    // One control connection: stats, then optionally shutdown.
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    writeln!(writer, "stats").map_err(|e| format!("send: {e}"))?;
    let mut stats = String::new();
    reader.read_line(&mut stats).map_err(|e| format!("recv: {e}"))?;
    println!("{}", stats.trim_end());
    println!(
        "tcp: {total} requests over {} connection(s) in {dt:.2}s ({:.0} req/s)",
        args.conns,
        total as f64 / dt
    );
    let mismatches = MetricsSnapshot::field(&stats, "mismatches")
        .ok_or_else(|| format!("stats reply unparsable: {stats:?}"))?;
    if mismatches != 0.0 {
        return Err(format!("server reported {mismatches} verify mismatches"));
    }
    if args.shutdown {
        writeln!(writer, "shutdown").map_err(|e| format!("send: {e}"))?;
        let mut bye = String::new();
        reader.read_line(&mut bye).map_err(|e| format!("recv: {e}"))?;
        if bye.trim_end() != "bye" {
            return Err(format!("unexpected shutdown reply {:?}", bye.trim_end()));
        }
        println!("tcp: server acknowledged shutdown");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = &args.tcp {
        return match run_tcp(addr, &args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    StderrProgress.note(&format!("warming {}...", args.key.token()));
    registry.warm(&[args.key], 1, &mut NullSink);
    let mut ok = true;
    if args.ratio {
        let ratio = run_ratio(&registry, &args);
        if let Some(floor) = args.expect_ratio {
            if ratio < floor {
                eprintln!("loadgen: batching speedup {ratio:.1}x is below the {floor:.0}x floor");
                ok = false;
            }
        }
    }
    if args.sweep {
        run_sweep(&registry, &args);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
