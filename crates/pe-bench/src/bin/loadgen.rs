//! `loadgen` — load generator for the `pe-serve` classification service.
//!
//! Three drive modes:
//!
//! `--events` routes every in-process service through the event-driven
//! (dirty-cell worklist) sweep mode; with `--ratio` it additionally
//! measures the low-activity payoff on a repeated-request stream.
//!
//! * **Ratio** (`--ratio`, part of the default run): closed-loop saturation
//!   throughput of the lane-coalescing service (up to `64 * W` requests per
//!   sweep; `--width` forces the slab width) versus a
//!   one-request-per-`run_batch` service (`batch_max = 1`) — the measured
//!   payoff of batch coalescing. `--expect-ratio R` turns the measurement
//!   into a gate (exit 1 below `R`), and the measured figures land in
//!   `BENCH_serve.json` at the workspace root. The main saturation run
//!   prints one line per `--sample-ms` interval — windowed throughput plus
//!   the queue-wait / service-time quantiles of just that interval
//!   (`HistSnapshot::delta_since`) — and the run is repeated with the
//!   observability layer disabled (`trace_capacity 0`, no `SimProfile`) to
//!   measure the instrumentation cost, recorded as `obs_overhead_pct`.
//! * **Sweep** (`--sweep`, part of the default run): open-loop arrival
//!   rates × batch deadlines, reporting served throughput, batch fill and
//!   p50/p99 latency per cell — the latency/efficiency trade-off curve of
//!   the deadline knob.
//! * **TCP** (`--tcp ADDR`): hammers a running `pe-serve` binary over the
//!   wire protocol with `--conns` concurrent connections, checks every
//!   reply, **scrapes the `metrics` exposition mid-run** (failing unless
//!   the per-model series — and the front end's `pe_conn_*` connection
//!   gauges — are present and non-zero), then reads `stats` and **fails if
//!   the server saw any verify mismatches**. `--shutdown` asks the server
//!   to drain and exit at the end (the CI smoke flow).
//! * **Open-loop TCP** (`--tcp ADDR --open`): one nonblocking client
//!   event loop multiplexing `--conns` concurrent connections (thousands —
//!   the 10k-connection acceptance run), pipelining every request up front
//!   so arrivals never wait on replies. Per-request latency is measured
//!   from last-byte-written to reply-line-read, the p50/p99 land in
//!   `BENCH_serve.json` (`open_*` fields), and **any** protocol error —
//!   a non-`ok` reply, an early server EOF, an unsolicited reply — fails
//!   the run.
//!
//! In-process modes serve real held-out test samples; TCP mode generates
//! uniform `[0,1)` feature vectors (integer-vs-gate equivalence holds for
//! every input, so random traffic is as strong a check as real traffic).

use pe_core::engine::{NullSink, ProgressSink, StderrProgress};
use pe_core::pipeline::RunOptions;
use pe_serve::{MetricsSnapshot, ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use pe_sim::LaneWidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    key: ModelKey,
    mode: ServeMode,
    requests: usize,
    batch_max: usize,
    width: Option<LaneWidth>,
    events: bool,
    ratio: bool,
    sweep: bool,
    expect_ratio: Option<f64>,
    tcp: Option<String>,
    conns: usize,
    open: bool,
    shutdown: bool,
    sample_ms: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        // The paper's own design style on the biggest dataset: the most
        // server-shaped cell of the grid (10 classes -> 10 cycles/request).
        key: ModelKey::parse("pendigits:seq").expect("default key parses"),
        mode: ServeMode::Verify,
        requests: 20_000,
        // One full 8-word slab per run_batch call (a single 512-lane sweep
        // at the default auto width): amortizes simulator construction past
        // the single-chunk floor without splitting the batch.
        batch_max: 512,
        width: None,
        events: false,
        ratio: false,
        sweep: false,
        expect_ratio: None,
        tcp: None,
        conns: 16,
        open: false,
        shutdown: false,
        sample_ms: 500,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--key" => args.key = ModelKey::parse(&value("--key")?)?,
            "--mode" => args.mode = ServeMode::parse(&value("--mode")?)?,
            "--requests" => {
                args.requests = value("--requests")?.parse().map_err(|_| "bad --requests")?;
            }
            "--batch-max" => {
                args.batch_max = value("--batch-max")?.parse().map_err(|_| "bad --batch-max")?;
            }
            "--width" => {
                let spec = value("--width")?;
                args.width = Some(
                    LaneWidth::parse(&spec)
                        .ok_or(format!("bad --width {spec:?} (expected 1|2|4|8 words)"))?,
                );
            }
            "--events" => args.events = true,
            "--ratio" => args.ratio = true,
            "--sweep" => args.sweep = true,
            "--expect-ratio" => {
                args.expect_ratio =
                    Some(value("--expect-ratio")?.parse().map_err(|_| "bad --expect-ratio")?);
            }
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--conns" => args.conns = value("--conns")?.parse().map_err(|_| "bad --conns")?,
            "--open" => args.open = true,
            "--shutdown" => args.shutdown = true,
            "--sample-ms" => {
                args.sample_ms = value("--sample-ms")?.parse().map_err(|_| "bad --sample-ms")?;
            }
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !args.ratio && !args.sweep && args.tcp.is_none() {
        args.ratio = true;
        args.sweep = true;
    }
    args.requests = args.requests.max(1);
    args.conns = args.conns.max(1);
    Ok(args)
}

/// Held-out test samples for `key`, cycled to `n` vectors.
fn test_vectors(registry: &ModelRegistry, key: ModelKey, n: usize) -> Vec<Vec<f64>> {
    registry.get(key).sample_requests(n)
}

/// Closed-loop saturation: `injectors` threads bulk-submit their whole
/// slice (backpressure paces them against the bounded queue), then wait
/// for every reply. With `sample`, a sampler thread prints one line per
/// interval: windowed throughput plus the queue-wait / service-time
/// quantiles of **just that interval** — per-model shard snapshots
/// subtracted with [`pe_obs::HistSnapshot::delta_since`].
fn saturation_rps(
    registry: &Arc<ModelRegistry>,
    key: ModelKey,
    cfg: ServiceConfig,
    xs: &[Vec<f64>],
    injectors: usize,
    sample: Option<Duration>,
) -> (f64, MetricsSnapshot) {
    let service = Service::start(Arc::clone(registry), cfg);
    let batch_max = service.config().batch_max;
    let done = AtomicBool::new(false);
    let t0 = Instant::now();
    let mut dt = 0.0;
    std::thread::scope(|scope| {
        if let Some(every) = sample {
            let service = &service;
            let done = &done;
            scope.spawn(move || {
                let us = |d: Duration| d.as_secs_f64() * 1e6;
                let shard = service.metrics_store().shard(key);
                let mut prev = shard.snapshot(batch_max);
                let mut prev_t = Instant::now();
                loop {
                    std::thread::sleep(every);
                    let cur = shard.snapshot(batch_max);
                    let stop = done.load(Ordering::Acquire);
                    let served = cur.served - prev.served;
                    if served > 0 {
                        let queue = cur.queue_wait.delta_since(&prev.queue_wait);
                        let svc = cur.service_time.delta_since(&prev.service_time);
                        println!(
                            "    t+{:<5.1}s {:>8.0} req/s  queue p50/p99 {:>7.1}/{:>9.1} µs  \
                             service p50/p99 {:>7.1}/{:>9.1} µs",
                            t0.elapsed().as_secs_f64(),
                            served as f64 / prev_t.elapsed().as_secs_f64(),
                            us(queue.quantile(0.5)),
                            us(queue.quantile(0.99)),
                            us(svc.quantile(0.5)),
                            us(svc.quantile(0.99)),
                        );
                    }
                    if stop {
                        break;
                    }
                    prev = cur;
                    prev_t = Instant::now();
                }
            });
        }
        let handles: Vec<_> = xs
            .chunks(xs.len().div_ceil(injectors))
            .map(|chunk| {
                let service = &service;
                scope.spawn(move || {
                    for t in service.submit_many(key, chunk) {
                        t.and_then(pe_serve::Ticket::wait).expect("saturation request failed");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("injector panicked");
        }
        // Stop the clock before the sampler's final interval drains, so the
        // reported rate covers exactly the injection window.
        dt = t0.elapsed().as_secs_f64();
        done.store(true, Ordering::Release);
    });
    let m = service.metrics();
    service.shutdown();
    (xs.len() as f64 / dt, m)
}

/// The batching payoff: coalesced wide-lane serving vs one-request-per-
/// `run_batch` serving, both at saturation. Records the figures in
/// `BENCH_serve.json` at the workspace root.
fn run_ratio(registry: &Arc<ModelRegistry>, args: &Args) -> f64 {
    let base = ServiceConfig {
        mode: args.mode,
        batch_max: args.batch_max,
        lane_width: args.width,
        event_driven: args.events,
        ..ServiceConfig::default()
    };
    let injectors = 8;
    let xs_batched = test_vectors(registry, args.key, args.requests);
    // The unbatched service is ~batch_max× slower; a smaller sample keeps
    // wall clock sane without changing the per-request cost being measured.
    let xs_single = test_vectors(registry, args.key, (args.requests / 16).max(512));

    let sample =
        if args.sample_ms > 0 { Some(Duration::from_millis(args.sample_ms)) } else { None };
    println!(
        "== batching payoff ({} @ {:?} mode, batch_max {}, saturation) ==",
        args.key.token(),
        args.mode,
        args.batch_max
    );
    // A short discarded pass first: first-touch allocation and frequency
    // ramp-up deflate whichever run goes first by 2x or more, which would
    // otherwise be charged to the headline figure.
    let _ = saturation_rps(registry, args.key, base.clone(), &xs_single, injectors, None);
    let (rps_b, m_b) =
        saturation_rps(registry, args.key, base.clone(), &xs_batched, injectors, sample);
    let (rps_s, m_s) = saturation_rps(
        registry,
        args.key,
        ServiceConfig { batch_max: 1, ..base.clone() },
        &xs_single,
        injectors,
        None,
    );
    println!(
        "  coalesced:            {rps_b:>10.0} req/s  fill {:>5.1}%  p99 {:>8.1} µs  mismatches {}",
        m_b.batch_fill * 100.0,
        m_b.p99.as_secs_f64() * 1e6,
        m_b.verify_mismatches
    );
    println!(
        "  one-per-run_batch:    {rps_s:>10.0} req/s  fill {:>5.1}%  p99 {:>8.1} µs  mismatches {}",
        m_s.batch_fill * 100.0,
        m_s.p99.as_secs_f64() * 1e6,
        m_s.verify_mismatches
    );
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    println!(
        "  decomposition:        queue p50/p99 {:.1}/{:.1} µs, service p50/p99 {:.1}/{:.1} µs \
         (coalesced)",
        us(m_b.queue_p50),
        us(m_b.queue_p99),
        us(m_b.service_p50),
        us(m_b.service_p99)
    );
    let ratio = rps_b / rps_s;
    println!(
        "  batching speedup: {ratio:.1}x  (lane_width {} words, lane_fill {:.1}%, {} sweeps)",
        m_b.lane_width,
        m_b.lane_fill * 100.0,
        m_b.sweeps
    );
    assert_eq!(m_b.verify_mismatches + m_s.verify_mismatches, 0, "verify must never fire");

    // Instrumentation cost: the same saturation workload with the
    // observability layer fully on (the default) vs fully off (no trace
    // ring, no SimProfile clocks). Best-of-two interleaved trials push
    // scheduler noise below the effect being measured.
    let bare_cfg = ServiceConfig { trace_capacity: 0, sim_profile: false, ..base.clone() };
    let mut rps_obs = 0.0f64;
    let mut rps_bare = 0.0f64;
    for _ in 0..2 {
        rps_obs = rps_obs
            .max(saturation_rps(registry, args.key, base.clone(), &xs_batched, injectors, None).0);
        rps_bare = rps_bare.max(
            saturation_rps(registry, args.key, bare_cfg.clone(), &xs_batched, injectors, None).0,
        );
    }
    let obs_overhead_pct = (1.0 - rps_obs / rps_bare) * 100.0;
    println!(
        "  instrumentation cost: {rps_obs:.0} req/s instrumented vs {rps_bare:.0} req/s bare \
         ({obs_overhead_pct:+.2}% throughput)"
    );

    // Low-activity delta: the same request repeated fills every lane of a
    // slab with identical bits, so the event-driven worklist drains after
    // the first sweep's settling — the best case for `--events`. Served
    // predictions must match bit-for-bit either way (Verify mode checks).
    if args.events {
        let xs_low: Vec<Vec<f64>> = vec![xs_batched[0].clone(); args.requests];
        let (rps_full, m_full) = saturation_rps(
            registry,
            args.key,
            ServiceConfig { event_driven: false, ..base.clone() },
            &xs_low,
            injectors,
            None,
        );
        let (rps_ev, m_ev) =
            saturation_rps(registry, args.key, base.clone(), &xs_low, injectors, None);
        assert_eq!(m_full.verify_mismatches + m_ev.verify_mismatches, 0, "verify must never fire");
        let gain_pct = (rps_ev / rps_full - 1.0) * 100.0;
        println!(
            "  low-activity (repeated request): {rps_ev:.0} req/s event-driven vs {rps_full:.0} \
             full-sweep ({gain_pct:+.1}%)"
        );
        record_bench(&[
            ("events_low_activity_rps", format!("{rps_ev:.0}")),
            ("dense_low_activity_rps", format!("{rps_full:.0}")),
            ("events_gain_pct", format!("{gain_pct:.2}")),
        ]);
    }

    // Machine-readable record for the acceptance gates and the README.
    record_bench(&[
        (
            "workload",
            format!(
                "\"{} @ {:?} mode, {} requests, batch_max {}, saturation\"",
                args.key.token(),
                args.mode,
                args.requests,
                args.batch_max
            ),
        ),
        ("coalesced_rps", format!("{rps_b:.0}")),
        ("single_rps", format!("{rps_s:.0}")),
        ("batching_speedup", format!("{ratio:.2}")),
        ("coalesced_p99_us", format!("{:.1}", m_b.p99.as_secs_f64() * 1e6)),
        ("single_p99_us", format!("{:.1}", m_s.p99.as_secs_f64() * 1e6)),
        ("coalesced_queue_p50_us", format!("{:.1}", us(m_b.queue_p50))),
        ("coalesced_queue_p99_us", format!("{:.1}", us(m_b.queue_p99))),
        ("coalesced_service_p50_us", format!("{:.1}", us(m_b.service_p50))),
        ("coalesced_service_p99_us", format!("{:.1}", us(m_b.service_p99))),
        ("batch_fill", format!("{:.3}", m_b.batch_fill)),
        ("lane_width_words", format!("{}", m_b.lane_width)),
        ("lane_fill", format!("{:.3}", m_b.lane_fill)),
        ("sweeps", format!("{}", m_b.sweeps)),
        ("instrumented_rps", format!("{rps_obs:.0}")),
        ("bare_rps", format!("{rps_bare:.0}")),
        ("obs_overhead_pct", format!("{obs_overhead_pct:.2}")),
    ]);
    ratio
}

/// Merges `fields` into `BENCH_serve.json` at the workspace root, keeping
/// any flat keys other runs wrote (the ratio run and the open-loop run
/// update disjoint key sets of the same record). Values are raw JSON
/// fragments (numbers, or pre-quoted strings).
fn record_bench(fields: &[(&str, String)]) {
    // Anchor to the workspace root: cargo runs bin targets with varying cwd.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    let mut entries: Vec<(String, String)> = Vec::new();
    if let Ok(text) = std::fs::read_to_string(path) {
        for line in text.lines() {
            let t = line.trim().trim_end_matches(',');
            if let Some((k, v)) = t.split_once(':') {
                let k = k.trim().trim_matches('"');
                if !k.is_empty() && !v.trim().is_empty() {
                    entries.push((k.to_owned(), v.trim().to_owned()));
                }
            }
        }
    }
    for (k, v) in fields {
        match entries.iter_mut().find(|(ek, _)| ek == k) {
            Some(e) => e.1.clone_from(v),
            None => entries.push(((*k).to_owned(), v.clone())),
        }
    }
    let mut json = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 < entries.len() { "," } else { "" };
        json.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    json.push_str("}\n");
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("loadgen: cannot write BENCH_serve.json: {e}");
    } else {
        println!("  wrote BENCH_serve.json");
    }
}

/// Open-loop arrival sweep: rates × deadlines, one fresh service per cell.
fn run_sweep(registry: &Arc<ModelRegistry>, args: &Args) {
    let rates = [2_000u64, 10_000, 50_000];
    let deadlines =
        [Duration::from_micros(200), Duration::from_millis(1), Duration::from_millis(5)];
    println!("== open-loop sweep ({} @ {:?} mode) ==", args.key.token(), args.mode);
    println!(
        "  {:>9}  {:>9}  {:>8}  {:>8}  {:>6}  {:>9}  {:>9}",
        "rate r/s", "deadline", "served", "dropped", "fill%", "p50 µs", "p99 µs"
    );
    for &rate in &rates {
        let n = ((rate as f64 * 0.25) as usize).clamp(200, 8_000);
        let xs = test_vectors(registry, args.key, n);
        for &deadline in &deadlines {
            let service = Service::start(
                Arc::clone(registry),
                ServiceConfig {
                    mode: args.mode,
                    batch_deadline: deadline,
                    event_driven: args.events,
                    ..ServiceConfig::default()
                },
            );
            let interval = Duration::from_secs_f64(1.0 / rate as f64);
            let mut tickets = Vec::with_capacity(n);
            let mut dropped = 0usize;
            let start = Instant::now();
            for (i, x) in xs.iter().enumerate() {
                let due = start + interval * i as u32;
                while Instant::now() < due {
                    std::hint::spin_loop();
                }
                // Open loop: never block the arrival process on the queue.
                match service.try_submit(args.key, x) {
                    Ok(t) => tickets.push(t),
                    Err(_) => dropped += 1,
                }
            }
            for t in tickets {
                let _ = t.wait();
            }
            let m = service.metrics();
            println!(
                "  {:>9}  {:>8.1}ms  {:>8}  {:>8}  {:>6.1}  {:>9.1}  {:>9.1}",
                rate,
                deadline.as_secs_f64() * 1e3,
                m.served,
                dropped,
                m.batch_fill * 100.0,
                m.p50.as_secs_f64() * 1e6,
                m.p99.as_secs_f64() * 1e6
            );
            service.shutdown();
        }
    }
}

/// What a mid-run `metrics` scrape saw (the front-end gauges feed the
/// open-loop acceptance record).
struct Scrape {
    conn_open: f64,
    conn_open_peak: f64,
}

/// Scrapes the `metrics` exposition from a running server (reading to the
/// `# EOF` sentinel) and fails unless the per-model series for `key` — and
/// the non-blocking front end's `pe_conn_*`/`pe_poll_*` gauges — are
/// present and non-zero: the CI smoke assertion that the observability
/// plumbing is actually live, not just parseable.
fn scrape_metrics(addr: &str, key: ModelKey) -> Result<Scrape, String> {
    // Let the classify connections land some traffic first, so the scrape
    // reads a genuinely mid-run exposition rather than a cold server.
    std::thread::sleep(Duration::from_millis(200));
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    writeln!(writer, "metrics").map_err(|e| format!("send: {e}"))?;
    let mut text = String::new();
    loop {
        let mut line = String::new();
        let n = reader.read_line(&mut line).map_err(|e| format!("recv: {e}"))?;
        if n == 0 {
            return Err(format!("metrics reply ended before # EOF:\n{text}"));
        }
        let done = line.trim_end() == "# EOF";
        text.push_str(&line);
        if done {
            break;
        }
    }
    let model = key.token();
    let series_value = |name: &str| -> Option<f64> {
        let prefix = format!("{name}{{model=\"{model}\"}} ");
        text.lines().find_map(|l| l.strip_prefix(&prefix)).and_then(|v| v.parse().ok())
    };
    for name in ["pe_submitted_total", "pe_served_total", "pe_latency_us_count"] {
        let v = series_value(name)
            .ok_or_else(|| format!("metrics exposition missing {name} for {model}"))?;
        if v <= 0.0 {
            return Err(format!("mid-run {name}{{model=\"{model}\"}} is {v}, expected non-zero"));
        }
    }
    // Unlabeled front-end series: at minimum this scrape's own connection
    // is open, and the event loop has made passes.
    let plain = |name: &str| -> Option<f64> {
        let prefix = format!("{name} ");
        text.lines().find_map(|l| l.strip_prefix(&prefix)).and_then(|v| v.parse().ok())
    };
    for name in ["pe_conn_open", "pe_conn_accepted_total", "pe_poll_passes_total"] {
        let v = plain(name).ok_or_else(|| format!("metrics exposition missing {name}"))?;
        if v <= 0.0 {
            return Err(format!("mid-run {name} is {v}, expected non-zero"));
        }
    }
    println!(
        "tcp: mid-run metrics scrape ok ({} series; {:.0} served so far, {:.0} conns open, \
         peak {:.0})",
        text.lines().filter(|l| !l.starts_with('#')).count(),
        series_value("pe_served_total").unwrap_or(0.0),
        plain("pe_conn_open").unwrap_or(0.0),
        plain("pe_conn_open_peak").unwrap_or(0.0),
    );
    Ok(Scrape {
        conn_open: plain("pe_conn_open").unwrap_or(0.0),
        conn_open_peak: plain("pe_conn_open_peak").unwrap_or(0.0),
    })
}

/// One connection of the open-loop client: pre-rendered pipelined request
/// bytes, send timestamps per line, and a reply parse buffer.
struct OpenConn {
    stream: TcpStream,
    out: Vec<u8>,
    opos: usize,
    /// End offset in `out` of each not-yet-fully-written request line.
    line_ends: std::collections::VecDeque<usize>,
    /// Flush timestamp of each written-but-unanswered request.
    sent_at: std::collections::VecDeque<Instant>,
    rbuf: Vec<u8>,
    replies_due: usize,
    eof: bool,
}

/// Open-loop TCP mode: one nonblocking event loop multiplexing
/// `args.conns` concurrent connections (the high-connection acceptance
/// run). Every request is pipelined up front — arrivals never wait on
/// replies — and per-request latency runs from last-byte-flushed to
/// reply-line-parsed. Any protocol error fails the run; the mid-run scrape
/// must see the front end's connection gauges at the expected level.
fn run_open_tcp(addr: &str, args: &Args) -> Result<(), String> {
    use std::io::{ErrorKind, Read};
    let n_features = args.key.profile.spec().n_features;
    let mut rng = StdRng::seed_from_u64(0x0bea10ad);
    let per_conn = (args.requests / args.conns).max(1);
    let total = per_conn * args.conns;
    println!(
        "tcp open-loop: {} connections x {per_conn} pipelined request(s) = {total} total",
        args.conns
    );
    let t_ramp = Instant::now();
    let mut conns: Vec<OpenConn> = Vec::with_capacity(args.conns);
    for c in 0..args.conns {
        let mut attempt = 0;
        let stream = loop {
            match TcpStream::connect(addr) {
                Ok(s) => break s,
                Err(e) => {
                    // Transient refusals happen when the listener backlog
                    // overflows during the ramp; retry with a pause.
                    attempt += 1;
                    if attempt > 50 {
                        return Err(format!("connect {c}/{}: {e}", args.conns));
                    }
                    std::thread::sleep(Duration::from_millis(20));
                }
            }
        };
        stream.set_nonblocking(true).map_err(|e| format!("nonblocking: {e}"))?;
        let _ = stream.set_nodelay(true);
        let mut out = Vec::new();
        let mut line_ends = std::collections::VecDeque::new();
        for _ in 0..per_conn {
            let x: Vec<f64> = (0..n_features).map(|_| rng.gen::<f64>()).collect();
            out.extend_from_slice(pe_serve::protocol::format_classify(args.key, &x).as_bytes());
            out.push(b'\n');
            line_ends.push_back(out.len());
        }
        conns.push(OpenConn {
            stream,
            out,
            opos: 0,
            line_ends,
            sent_at: std::collections::VecDeque::new(),
            rbuf: Vec::new(),
            replies_due: per_conn,
            eof: false,
        });
    }
    println!("tcp open-loop: ramp complete in {:.2}s", t_ramp.elapsed().as_secs_f64());

    let scrape = std::thread::spawn({
        let addr = addr.to_owned();
        let key = args.key;
        move || scrape_metrics(&addr, key)
    });
    let hist = pe_obs::Histogram::new();
    let mut errors = 0usize;
    let mut replies = 0usize;
    let t0 = Instant::now();
    let deadline = t0 + Duration::from_secs(120 + total as u64 / 1_000);
    let mut idle_pause = Duration::from_micros(50);
    while replies + errors < total {
        if Instant::now() > deadline {
            return Err(format!(
                "open-loop timed out: {replies}/{total} replies after {:.1}s",
                t0.elapsed().as_secs_f64()
            ));
        }
        let mut progressed = false;
        for conn in &mut conns {
            if conn.replies_due == 0 {
                continue;
            }
            while conn.opos < conn.out.len() {
                match conn.stream.write(&conn.out[conn.opos..]) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.opos += n;
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(format!("send: {e}")),
                }
            }
            let now = Instant::now();
            while conn.line_ends.front().is_some_and(|&end| end <= conn.opos) {
                conn.line_ends.pop_front();
                conn.sent_at.push_back(now);
            }
            let mut buf = [0u8; 4096];
            loop {
                match conn.stream.read(&mut buf) {
                    Ok(0) => {
                        conn.eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.rbuf.extend_from_slice(&buf[..n]);
                        progressed = true;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => {}
                    Err(e) => return Err(format!("recv: {e}")),
                }
            }
            while let Some(i) = conn.rbuf.iter().position(|&b| b == b'\n') {
                let line: Vec<u8> = conn.rbuf.drain(..=i).collect();
                let Some(sent) = conn.sent_at.pop_front() else {
                    errors += 1; // unsolicited reply
                    continue;
                };
                conn.replies_due -= 1;
                if line.starts_with(b"ok ") {
                    replies += 1;
                    hist.record(sent.elapsed());
                } else {
                    errors += 1;
                }
            }
            if conn.eof && conn.replies_due > 0 {
                return Err(format!(
                    "server EOF with {} replies outstanding on one connection",
                    conn.replies_due
                ));
            }
        }
        if progressed {
            idle_pause = Duration::from_micros(50);
        } else {
            std::thread::sleep(idle_pause);
            idle_pause = (idle_pause * 2).min(Duration::from_millis(2));
        }
    }
    let dt = t0.elapsed().as_secs_f64();
    // Keep every connection open until the delayed scrape has looked at the
    // server's gauges — dropping them first would deflate `pe_conn_open`.
    let scrape = scrape.join().expect("metrics scrape thread panicked")?;
    drop(conns);
    if errors > 0 {
        return Err(format!("{errors} protocol error(s) across {total} open-loop requests"));
    }
    if scrape.conn_open < args.conns as f64 {
        return Err(format!(
            "mid-run pe_conn_open {} below the {} connections this client held open",
            scrape.conn_open, args.conns
        ));
    }
    let snap = hist.snapshot();
    let us = |d: Duration| d.as_secs_f64() * 1e6;
    let (p50, p99) = (us(snap.quantile(0.5)), us(snap.quantile(0.99)));
    println!(
        "tcp open-loop: {replies} ok replies over {} conns in {dt:.2}s ({:.0} req/s), \
         latency p50 {p50:.0} µs p99 {p99:.0} µs, 0 protocol errors",
        args.conns,
        replies as f64 / dt
    );
    record_bench(&[
        ("open_conns", format!("{}", args.conns)),
        ("open_requests", format!("{total}")),
        ("open_rps", format!("{:.0}", replies as f64 / dt)),
        ("open_p50_us", format!("{p50:.1}")),
        ("open_p99_us", format!("{p99:.1}")),
        ("open_errors", format!("{errors}")),
        ("open_conn_open_peak", format!("{:.0}", scrape.conn_open_peak)),
    ]);

    // One control connection: stats, then optionally shutdown.
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    writeln!(writer, "stats").map_err(|e| format!("send: {e}"))?;
    let mut stats = String::new();
    reader.read_line(&mut stats).map_err(|e| format!("recv: {e}"))?;
    println!("{}", stats.trim_end());
    let mismatches = MetricsSnapshot::field(&stats, "mismatches")
        .ok_or_else(|| format!("stats reply unparsable: {stats:?}"))?;
    if mismatches != 0.0 {
        return Err(format!("server reported {mismatches} verify mismatches"));
    }
    if args.shutdown {
        writeln!(writer, "shutdown").map_err(|e| format!("send: {e}"))?;
        let mut bye = String::new();
        reader.read_line(&mut bye).map_err(|e| format!("recv: {e}"))?;
        if bye.trim_end() != "bye" {
            return Err(format!("unexpected shutdown reply {:?}", bye.trim_end()));
        }
        println!("tcp: server acknowledged shutdown");
    }
    Ok(())
}

/// Drives a running `pe-serve` over TCP; returns an error message on any
/// failed reply, a failed mid-run `metrics` scrape, or server-side verify
/// mismatches.
fn run_tcp(addr: &str, args: &Args) -> Result<(), String> {
    let n_features = args.key.profile.spec().n_features;
    let mut rng = StdRng::seed_from_u64(0x10adf3ed);
    let per_conn = args.requests.div_ceil(args.conns);
    let vectors: Vec<Vec<f64>> = (0..args.conns * per_conn)
        .map(|_| (0..n_features).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let t0 = Instant::now();
    let results: Vec<Result<usize, String>> = std::thread::scope(|scope| {
        // While the connection threads hammer the server, one extra thread
        // scrapes the `metrics` exposition mid-run.
        let scrape = scope.spawn(|| scrape_metrics(addr, args.key));
        let handles: Vec<_> = vectors
            .chunks(per_conn)
            .map(|chunk| {
                scope.spawn(move || -> Result<usize, String> {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut reader = BufReader::new(
                        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
                    );
                    let mut writer = stream;
                    let mut reply = String::new();
                    for x in chunk {
                        let line = pe_serve::protocol::format_classify(args.key, x);
                        writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
                        reply.clear();
                        reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
                        if !reply.starts_with("ok ") {
                            return Err(format!("unexpected reply {:?}", reply.trim_end()));
                        }
                    }
                    Ok(chunk.len())
                })
            })
            .collect();
        let mut results: Vec<Result<usize, String>> =
            handles.into_iter().map(|h| h.join().expect("connection thread panicked")).collect();
        results.push(scrape.join().expect("metrics scrape thread panicked").map(|_| 0));
        results
    });
    let dt = t0.elapsed().as_secs_f64();
    let mut total = 0usize;
    for r in results {
        total += r?;
    }

    // One control connection: stats, then optionally shutdown.
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    writeln!(writer, "stats").map_err(|e| format!("send: {e}"))?;
    let mut stats = String::new();
    reader.read_line(&mut stats).map_err(|e| format!("recv: {e}"))?;
    println!("{}", stats.trim_end());
    println!(
        "tcp: {total} requests over {} connection(s) in {dt:.2}s ({:.0} req/s)",
        args.conns,
        total as f64 / dt
    );
    let mismatches = MetricsSnapshot::field(&stats, "mismatches")
        .ok_or_else(|| format!("stats reply unparsable: {stats:?}"))?;
    if mismatches != 0.0 {
        return Err(format!("server reported {mismatches} verify mismatches"));
    }
    if args.shutdown {
        writeln!(writer, "shutdown").map_err(|e| format!("send: {e}"))?;
        let mut bye = String::new();
        reader.read_line(&mut bye).map_err(|e| format!("recv: {e}"))?;
        if bye.trim_end() != "bye" {
            return Err(format!("unexpected shutdown reply {:?}", bye.trim_end()));
        }
        println!("tcp: server acknowledged shutdown");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = &args.tcp {
        let res = if args.open { run_open_tcp(addr, &args) } else { run_tcp(addr, &args) };
        return match res {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    StderrProgress.note(&format!("warming {}...", args.key.token()));
    registry.warm(&[args.key], 1, &mut NullSink);
    let mut ok = true;
    if args.ratio {
        let ratio = run_ratio(&registry, &args);
        if let Some(floor) = args.expect_ratio {
            if ratio < floor {
                eprintln!("loadgen: batching speedup {ratio:.1}x is below the {floor:.0}x floor");
                ok = false;
            }
        }
    }
    if args.sweep {
        run_sweep(&registry, &args);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
