//! `loadgen` — load generator for the `pe-serve` classification service.
//!
//! Three drive modes:
//!
//! `--events` routes every in-process service through the event-driven
//! (dirty-cell worklist) sweep mode; with `--ratio` it additionally
//! measures the low-activity payoff on a repeated-request stream.
//!
//! * **Ratio** (`--ratio`, part of the default run): closed-loop saturation
//!   throughput of the lane-coalescing service (up to `64 * W` requests per
//!   sweep; `--width` forces the slab width) versus a
//!   one-request-per-`run_batch` service (`batch_max = 1`) — the measured
//!   payoff of batch coalescing. `--expect-ratio R` turns the measurement
//!   into a gate (exit 1 below `R`), and the measured figures land in
//!   `BENCH_serve.json` at the workspace root.
//! * **Sweep** (`--sweep`, part of the default run): open-loop arrival
//!   rates × batch deadlines, reporting served throughput, batch fill and
//!   p50/p99 latency per cell — the latency/efficiency trade-off curve of
//!   the deadline knob.
//! * **TCP** (`--tcp ADDR`): hammers a running `pe-serve` binary over the
//!   wire protocol with `--conns` concurrent connections, checks every
//!   reply, then reads `stats` and **fails if the server saw any verify
//!   mismatches**. `--shutdown` asks the server to drain and exit at the
//!   end (the CI smoke flow).
//!
//! In-process modes serve real held-out test samples; TCP mode generates
//! uniform `[0,1)` feature vectors (integer-vs-gate equivalence holds for
//! every input, so random traffic is as strong a check as real traffic).

use pe_core::engine::{NullSink, ProgressSink, StderrProgress};
use pe_core::pipeline::RunOptions;
use pe_serve::{MetricsSnapshot, ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use pe_sim::LaneWidth;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

struct Args {
    key: ModelKey,
    mode: ServeMode,
    requests: usize,
    batch_max: usize,
    width: Option<LaneWidth>,
    events: bool,
    ratio: bool,
    sweep: bool,
    expect_ratio: Option<f64>,
    tcp: Option<String>,
    conns: usize,
    shutdown: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        // The paper's own design style on the biggest dataset: the most
        // server-shaped cell of the grid (10 classes -> 10 cycles/request).
        key: ModelKey::parse("pendigits:seq").expect("default key parses"),
        mode: ServeMode::Verify,
        requests: 20_000,
        // One full 8-word slab per run_batch call (a single 512-lane sweep
        // at the default auto width): amortizes simulator construction past
        // the single-chunk floor without splitting the batch.
        batch_max: 512,
        width: None,
        events: false,
        ratio: false,
        sweep: false,
        expect_ratio: None,
        tcp: None,
        conns: 16,
        shutdown: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--key" => args.key = ModelKey::parse(&value("--key")?)?,
            "--mode" => args.mode = ServeMode::parse(&value("--mode")?)?,
            "--requests" => {
                args.requests = value("--requests")?.parse().map_err(|_| "bad --requests")?;
            }
            "--batch-max" => {
                args.batch_max = value("--batch-max")?.parse().map_err(|_| "bad --batch-max")?;
            }
            "--width" => {
                let spec = value("--width")?;
                args.width = Some(
                    LaneWidth::parse(&spec)
                        .ok_or(format!("bad --width {spec:?} (expected 1|2|4|8 words)"))?,
                );
            }
            "--events" => args.events = true,
            "--ratio" => args.ratio = true,
            "--sweep" => args.sweep = true,
            "--expect-ratio" => {
                args.expect_ratio =
                    Some(value("--expect-ratio")?.parse().map_err(|_| "bad --expect-ratio")?);
            }
            "--tcp" => args.tcp = Some(value("--tcp")?),
            "--conns" => args.conns = value("--conns")?.parse().map_err(|_| "bad --conns")?,
            "--shutdown" => args.shutdown = true,
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if !args.ratio && !args.sweep && args.tcp.is_none() {
        args.ratio = true;
        args.sweep = true;
    }
    args.requests = args.requests.max(1);
    args.conns = args.conns.max(1);
    Ok(args)
}

/// Held-out test samples for `key`, cycled to `n` vectors.
fn test_vectors(registry: &ModelRegistry, key: ModelKey, n: usize) -> Vec<Vec<f64>> {
    registry.get(key).sample_requests(n)
}

/// Closed-loop saturation: `injectors` threads bulk-submit their whole
/// slice (backpressure paces them against the bounded queue), then wait
/// for every reply.
fn saturation_rps(
    registry: &Arc<ModelRegistry>,
    key: ModelKey,
    cfg: ServiceConfig,
    xs: &[Vec<f64>],
    injectors: usize,
) -> (f64, MetricsSnapshot) {
    let service = Service::start(Arc::clone(registry), cfg);
    let t0 = Instant::now();
    std::thread::scope(|scope| {
        for chunk in xs.chunks(xs.len().div_ceil(injectors)) {
            let service = &service;
            scope.spawn(move || {
                for t in service.submit_many(key, chunk) {
                    t.and_then(pe_serve::Ticket::wait).expect("saturation request failed");
                }
            });
        }
    });
    let dt = t0.elapsed().as_secs_f64();
    let m = service.metrics();
    service.shutdown();
    (xs.len() as f64 / dt, m)
}

/// The batching payoff: coalesced wide-lane serving vs one-request-per-
/// `run_batch` serving, both at saturation. Records the figures in
/// `BENCH_serve.json` at the workspace root.
fn run_ratio(registry: &Arc<ModelRegistry>, args: &Args) -> f64 {
    let base = ServiceConfig {
        mode: args.mode,
        batch_max: args.batch_max,
        lane_width: args.width,
        event_driven: args.events,
        ..ServiceConfig::default()
    };
    let injectors = 8;
    let xs_batched = test_vectors(registry, args.key, args.requests);
    // The unbatched service is ~batch_max× slower; a smaller sample keeps
    // wall clock sane without changing the per-request cost being measured.
    let xs_single = test_vectors(registry, args.key, (args.requests / 16).max(512));

    let (rps_b, m_b) = saturation_rps(registry, args.key, base.clone(), &xs_batched, injectors);
    let (rps_s, m_s) = saturation_rps(
        registry,
        args.key,
        ServiceConfig { batch_max: 1, ..base },
        &xs_single,
        injectors,
    );
    println!(
        "== batching payoff ({} @ {:?} mode, batch_max {}, saturation) ==",
        args.key.token(),
        args.mode,
        args.batch_max
    );
    println!(
        "  coalesced:            {rps_b:>10.0} req/s  fill {:>5.1}%  p99 {:>8.1} µs  mismatches {}",
        m_b.batch_fill * 100.0,
        m_b.p99.as_secs_f64() * 1e6,
        m_b.verify_mismatches
    );
    println!(
        "  one-per-run_batch:    {rps_s:>10.0} req/s  fill {:>5.1}%  p99 {:>8.1} µs  mismatches {}",
        m_s.batch_fill * 100.0,
        m_s.p99.as_secs_f64() * 1e6,
        m_s.verify_mismatches
    );
    let ratio = rps_b / rps_s;
    println!(
        "  batching speedup: {ratio:.1}x  (lane_width {} words, lane_fill {:.1}%, {} sweeps)",
        m_b.lane_width,
        m_b.lane_fill * 100.0,
        m_b.sweeps
    );
    assert_eq!(m_b.verify_mismatches + m_s.verify_mismatches, 0, "verify must never fire");

    // Low-activity delta: the same request repeated fills every lane of a
    // slab with identical bits, so the event-driven worklist drains after
    // the first sweep's settling — the best case for `--events`. Served
    // predictions must match bit-for-bit either way (Verify mode checks).
    if args.events {
        let xs_low: Vec<Vec<f64>> = vec![xs_batched[0].clone(); args.requests];
        let (rps_full, m_full) = saturation_rps(
            registry,
            args.key,
            ServiceConfig { event_driven: false, ..base.clone() },
            &xs_low,
            injectors,
        );
        let (rps_ev, m_ev) = saturation_rps(registry, args.key, base.clone(), &xs_low, injectors);
        assert_eq!(m_full.verify_mismatches + m_ev.verify_mismatches, 0, "verify must never fire");
        println!(
            "  low-activity (repeated request): {rps_ev:.0} req/s event-driven vs {rps_full:.0} \
             full-sweep ({:+.1}%)",
            (rps_ev / rps_full - 1.0) * 100.0
        );
    }

    // Machine-readable record for the acceptance gates and the README.
    let json = format!(
        "{{\n  \"workload\": \"{} @ {:?} mode, {} requests, batch_max {}, saturation\",\n  \
         \"coalesced_rps\": {:.0},\n  \"single_rps\": {:.0},\n  \"batching_speedup\": {:.2},\n  \
         \"coalesced_p99_us\": {:.1},\n  \"single_p99_us\": {:.1},\n  \
         \"batch_fill\": {:.3},\n  \"lane_width_words\": {},\n  \"lane_fill\": {:.3},\n  \
         \"sweeps\": {}\n}}\n",
        args.key.token(),
        args.mode,
        args.requests,
        args.batch_max,
        rps_b,
        rps_s,
        ratio,
        m_b.p99.as_secs_f64() * 1e6,
        m_s.p99.as_secs_f64() * 1e6,
        m_b.batch_fill,
        m_b.lane_width,
        m_b.lane_fill,
        m_b.sweeps,
    );
    // Anchor to the workspace root: cargo runs bin targets with varying cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("loadgen: cannot write BENCH_serve.json: {e}");
    } else {
        println!("  wrote BENCH_serve.json");
    }
    ratio
}

/// Open-loop arrival sweep: rates × deadlines, one fresh service per cell.
fn run_sweep(registry: &Arc<ModelRegistry>, args: &Args) {
    let rates = [2_000u64, 10_000, 50_000];
    let deadlines =
        [Duration::from_micros(200), Duration::from_millis(1), Duration::from_millis(5)];
    println!("== open-loop sweep ({} @ {:?} mode) ==", args.key.token(), args.mode);
    println!(
        "  {:>9}  {:>9}  {:>8}  {:>8}  {:>6}  {:>9}  {:>9}",
        "rate r/s", "deadline", "served", "dropped", "fill%", "p50 µs", "p99 µs"
    );
    for &rate in &rates {
        let n = ((rate as f64 * 0.25) as usize).clamp(200, 8_000);
        let xs = test_vectors(registry, args.key, n);
        for &deadline in &deadlines {
            let service = Service::start(
                Arc::clone(registry),
                ServiceConfig {
                    mode: args.mode,
                    batch_deadline: deadline,
                    event_driven: args.events,
                    ..ServiceConfig::default()
                },
            );
            let interval = Duration::from_secs_f64(1.0 / rate as f64);
            let mut tickets = Vec::with_capacity(n);
            let mut dropped = 0usize;
            let start = Instant::now();
            for (i, x) in xs.iter().enumerate() {
                let due = start + interval * i as u32;
                while Instant::now() < due {
                    std::hint::spin_loop();
                }
                // Open loop: never block the arrival process on the queue.
                match service.try_submit(args.key, x) {
                    Ok(t) => tickets.push(t),
                    Err(_) => dropped += 1,
                }
            }
            for t in tickets {
                let _ = t.wait();
            }
            let m = service.metrics();
            println!(
                "  {:>9}  {:>8.1}ms  {:>8}  {:>8}  {:>6.1}  {:>9.1}  {:>9.1}",
                rate,
                deadline.as_secs_f64() * 1e3,
                m.served,
                dropped,
                m.batch_fill * 100.0,
                m.p50.as_secs_f64() * 1e6,
                m.p99.as_secs_f64() * 1e6
            );
            service.shutdown();
        }
    }
}

/// Drives a running `pe-serve` over TCP; returns an error message on any
/// failed reply or on server-side verify mismatches.
fn run_tcp(addr: &str, args: &Args) -> Result<(), String> {
    let n_features = args.key.profile.spec().n_features;
    let mut rng = StdRng::seed_from_u64(0x10adf3ed);
    let per_conn = args.requests.div_ceil(args.conns);
    let vectors: Vec<Vec<f64>> = (0..args.conns * per_conn)
        .map(|_| (0..n_features).map(|_| rng.gen::<f64>()).collect())
        .collect();
    let t0 = Instant::now();
    let results: Vec<Result<usize, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = vectors
            .chunks(per_conn)
            .map(|chunk| {
                scope.spawn(move || -> Result<usize, String> {
                    let stream =
                        TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
                    let mut reader = BufReader::new(
                        stream.try_clone().map_err(|e| format!("clone stream: {e}"))?,
                    );
                    let mut writer = stream;
                    let mut reply = String::new();
                    for x in chunk {
                        let line = pe_serve::protocol::format_classify(args.key, x);
                        writeln!(writer, "{line}").map_err(|e| format!("send: {e}"))?;
                        reply.clear();
                        reader.read_line(&mut reply).map_err(|e| format!("recv: {e}"))?;
                        if !reply.starts_with("ok ") {
                            return Err(format!("unexpected reply {:?}", reply.trim_end()));
                        }
                    }
                    Ok(chunk.len())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("connection thread panicked")).collect()
    });
    let dt = t0.elapsed().as_secs_f64();
    let mut total = 0usize;
    for r in results {
        total += r?;
    }

    // One control connection: stats, then optionally shutdown.
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| format!("clone: {e}"))?);
    let mut writer = stream;
    writeln!(writer, "stats").map_err(|e| format!("send: {e}"))?;
    let mut stats = String::new();
    reader.read_line(&mut stats).map_err(|e| format!("recv: {e}"))?;
    println!("{}", stats.trim_end());
    println!(
        "tcp: {total} requests over {} connection(s) in {dt:.2}s ({:.0} req/s)",
        args.conns,
        total as f64 / dt
    );
    let mismatches = MetricsSnapshot::field(&stats, "mismatches")
        .ok_or_else(|| format!("stats reply unparsable: {stats:?}"))?;
    if mismatches != 0.0 {
        return Err(format!("server reported {mismatches} verify mismatches"));
    }
    if args.shutdown {
        writeln!(writer, "shutdown").map_err(|e| format!("send: {e}"))?;
        let mut bye = String::new();
        reader.read_line(&mut bye).map_err(|e| format!("recv: {e}"))?;
        if bye.trim_end() != "bye" {
            return Err(format!("unexpected shutdown reply {:?}", bye.trim_end()));
        }
        println!("tcp: server acknowledged shutdown");
    }
    Ok(())
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("loadgen: {msg}");
            return ExitCode::from(2);
        }
    };
    if let Some(addr) = &args.tcp {
        return match run_tcp(addr, &args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("loadgen: {msg}");
                ExitCode::FAILURE
            }
        };
    }
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    StderrProgress.note(&format!("warming {}...", args.key.token()));
    registry.warm(&[args.key], 1, &mut NullSink);
    let mut ok = true;
    if args.ratio {
        let ratio = run_ratio(&registry, &args);
        if let Some(floor) = args.expect_ratio {
            if ratio < floor {
                eprintln!("loadgen: batching speedup {ratio:.1}x is below the {floor:.0}x floor");
                ok = false;
            }
        }
    }
    if args.sweep {
        run_sweep(&registry, &args);
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
