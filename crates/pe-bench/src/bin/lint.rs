//! Static analysis driver: lints any Table-I design (or a structural-Verilog
//! file) and reports its stuck-at fault-collapsing statistics.
//!
//! Usage: `cargo run --release -p pe-bench --bin lint --
//!         [profile:style ...] [--all] [--verilog FILE]`
//!
//! * `profile:style` — a Table-I grid key (`cardio:seq`, `redwine:mlp`, …):
//!   the model is trained, elaborated and linted.
//! * `--all` — the whole 5 × 4 Table-I grid.
//! * `--verilog FILE` — parse a structural-Verilog file back into the IR
//!   (`pe_netlist::verilog_parse`) and lint that instead.
//!
//! Exit status is nonzero iff any design produced an Error-severity
//! diagnostic — the CI gate that keeps generator regressions out.

use pe_core::pipeline::{build_netlist, prepare_model, RunOptions};
use pe_lint::{collapse_fault_sites, lint_netlist, Severity};
use pe_netlist::Netlist;
use pe_serve::registry::ModelKey;

/// Lints one netlist, prints its report and collapse statistics, and
/// returns whether it carried an Error.
fn lint_one(label: &str, nl: &Netlist) -> bool {
    let report = lint_netlist(nl);
    let collapsed = collapse_fault_sites(nl);
    println!(
        "[{label}] {} cells, {} nets: {} diagnostics ({} error, {} warn, {} info)",
        nl.num_cells(),
        nl.num_nets(),
        report.len(),
        report.count(Severity::Error),
        report.count(Severity::Warn),
        report.count(Severity::Info),
    );
    if !report.is_empty() {
        print!("{report}");
    }
    println!(
        "  fault collapsing: {} sites -> {} simulated ({} equivalence classes, \
         {} statically benign; {:.1} % reduction, {} more dominance-prunable)",
        collapsed.num_sites(),
        collapsed.num_simulated(),
        collapsed.num_representatives(),
        collapsed.static_benign.len(),
        100.0 * collapsed.reduction(),
        collapsed.dominance_prunable(),
    );
    report.has_errors()
}

fn main() {
    let mut keys: Vec<ModelKey> = Vec::new();
    let mut verilog: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        if arg == "--all" {
            keys = ModelKey::table1_grid();
        } else if arg == "--verilog" {
            match it.next() {
                Some(path) => verilog.push(path),
                None => {
                    eprintln!("lint: --verilog needs a file path");
                    std::process::exit(2);
                }
            }
        } else {
            match ModelKey::parse(&arg) {
                Ok(k) => keys.push(k),
                Err(e) => {
                    eprintln!("lint: {e}");
                    eprintln!("usage: lint [profile:style ...] [--all] [--verilog FILE]");
                    std::process::exit(2);
                }
            }
        }
    }
    if keys.is_empty() && verilog.is_empty() {
        eprintln!("usage: lint [profile:style ...] [--all] [--verilog FILE]");
        std::process::exit(2);
    }

    let opts = RunOptions::default();
    let mut failed = false;
    for key in keys {
        let prepared = prepare_model(key.profile, key.style, &opts);
        let nl = build_netlist(key.style, &prepared);
        failed |= lint_one(&key.token(), &nl);
    }
    for path in verilog {
        let src = match std::fs::read_to_string(&path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("lint: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        match pe_netlist::verilog_parse::from_verilog(&src) {
            Ok(nl) => failed |= lint_one(&path, &nl),
            Err(e) => {
                eprintln!("lint: {path}: parse error: {e}");
                failed = true;
            }
        }
    }
    if failed {
        eprintln!("lint: error-severity diagnostics present");
        std::process::exit(1);
    }
}
