//! Regenerates the paper's Table I: hardware evaluation of the sequential
//! SVMs against the three state-of-the-art baselines on all five datasets.
//!
//! Usage: `cargo run --release -p pe-bench --bin table1`

use pe_bench::build_table1;
use pe_core::pipeline::RunOptions;

fn main() {
    let opts = RunOptions::default();
    eprintln!(
        "building Table I (5 datasets x 4 design styles) on {} threads...",
        pe_bench::grid_threads()
    );
    let table = build_table1(&opts);
    println!("\n# Table I (reproduced)\n");
    println!("{}", table.to_markdown());
}
