//! Generates the paper-vs-measured comparison tables for EXPERIMENTS.md:
//! runs the full Table I grid and renders it side by side with the paper's
//! published numbers, plus every derived claim.
//!
//! Usage: `cargo run --release -p pe-bench --bin experiments > EXPERIMENTS.generated.md`

use pe_bench::build_table1;
use pe_cells::Battery;
use pe_core::pipeline::RunOptions;
use pe_core::report::paper_table1;
use pe_core::styles::DesignStyle;

fn main() {
    let table = build_table1(&RunOptions::default());
    let paper = paper_table1();

    println!("## Table I — paper vs measured (per cell)\n");
    println!("| Dataset | Model | Acc. paper/ours (%) | Area paper/ours (cm2) | Power paper/ours (mW) | Freq paper/ours (Hz) | Latency paper/ours (ms) | Energy paper/ours (mJ) |");
    println!("|---|---|---|---|---|---|---|---|");
    for r in &table.rows {
        let p = paper.iter().find(|p| p.dataset == r.dataset && p.style == r.style);
        match p {
            Some(p) => println!(
                "| {} | {} | {:.1} / {:.1} | {:.1} / {:.1} | {:.1} / {:.2} | {:.0} / {:.0} | {:.0} / {:.0} | {:.2} / {:.3} |",
                r.dataset, r.style.label(),
                p.acc_pct, r.accuracy_pct,
                p.area_cm2, r.area_cm2,
                p.power_mw, r.power_mw,
                p.freq_hz, r.freq_hz,
                p.latency_ms, r.latency_ms,
                p.energy_mj, r.energy_mj,
            ),
            None => println!(
                "| {} | {} | n/a / {:.1} | n/a / {:.1} | n/a / {:.2} | n/a / {:.0} | n/a / {:.0} | n/a / {:.3} |",
                r.dataset, r.style.label(),
                r.accuracy_pct, r.area_cm2, r.power_mw, r.freq_hz, r.latency_ms, r.energy_mj,
            ),
        }
    }

    println!("\n## Derived claims — paper vs measured\n");
    println!("| claim | paper | measured |");
    println!("|---|---|---|");
    let mut ratios = Vec::new();
    for (style, pr, pd) in [
        (DesignStyle::ParallelSvm, 10.6, 2.02),
        (DesignStyle::ApproxParallelSvm, 5.4, 3.13),
        (DesignStyle::ParallelMlp, 3.46, 4.38),
    ] {
        let ratio = table.energy_improvement_over(style).unwrap_or(f64::NAN);
        let delta = table.accuracy_delta_over(style).unwrap_or(f64::NAN);
        ratios.push(ratio);
        println!("| energy improvement vs {} | {:.2}x | {:.2}x |", style.label(), pr, ratio);
        println!("| accuracy delta vs {} | +{:.2} pts | {:+.2} pts |", style.label(), pd, delta);
    }
    println!(
        "| average energy improvement | 6.50x | {:.2}x |",
        ratios.iter().sum::<f64>() / ratios.len() as f64
    );
    if let Some((peak, avg)) = table.ours_power_profile() {
        println!("| ours peak power | 22.9 mW | {peak:.1} mW |");
        println!("| ours average power | 13.58 mW | {avg:.2} mW |");
    }
    if let Some(e) = table.ours_average_energy() {
        println!("| ours average energy | 2.46 mJ | {e:.2} mJ |");
    }
    let f = table.battery_feasibility(&Battery::molex_30mw());
    println!(
        "| designs within Molex 30 mW | ours 5/5, SotA 4/13 | ours {}/{}, SotA {}/{} |",
        f.ours_ok, f.ours_total, f.sota_ok, f.sota_total
    );
    // Per-dataset energy winners.
    println!("\n## Energy winner per (dataset, baseline)\n");
    println!("| dataset | vs SVM [2] | vs SVM [3]* | vs MLP [4]* |");
    println!("|---|---|---|---|");
    for ours in table.style_rows(DesignStyle::SequentialSvm) {
        let who = |style| {
            table
                .row(&ours.dataset, style)
                .map(|b| if ours.energy_mj < b.energy_mj { "ours" } else { "baseline" })
                .unwrap_or("-")
        };
        println!(
            "| {} | {} | {} | {} |",
            ours.dataset,
            who(DesignStyle::ParallelSvm),
            who(DesignStyle::ApproxParallelSvm),
            who(DesignStyle::ParallelMlp)
        );
    }
}
