//! Regenerates the design-choice arguments of §II that have no table of
//! their own: One-vs-Rest vs One-vs-One storage cost, MUX-ROM vs crossbar
//! ROM (with printed-ADC cost), and sensitivity of the headline energy
//! claim to the PDK calibration.
//!
//! All hardware evaluation rides on one [`ExperimentEngine`], so the
//! sequential models are trained once and reused across the MUX-vs-crossbar
//! analysis and every PDK variant.
//!
//! Usage: `cargo run --release -p pe-bench --bin ablations`

use pe_cells::{EgfetLibrary, TechParams};
use pe_core::ablation;
use pe_core::engine::{ExperimentEngine, Job};
use pe_core::pipeline::{PreparedModel, RunOptions};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;

fn main() {
    let opts = RunOptions { max_sim_samples: 60, ..RunOptions::default() };
    // One engine for everything: Cardio (ours + [2]) for the PDK study; the
    // model cache additionally serves the storage ablation for all profiles.
    let engine = ExperimentEngine::new(
        vec![
            Job::new(UciProfile::Cardio, DesignStyle::SequentialSvm),
            Job::new(UciProfile::Cardio, DesignStyle::ParallelSvm),
        ],
        opts,
    );

    println!("# Ablation 1: OvR vs OvO stored classifiers (the paper's storage argument)\n");
    println!("| dataset | classes | OvR classifiers | OvO classifiers |");
    println!("|---|---|---|---|");
    for (p, n) in [
        (UciProfile::Cardio, 3),
        (UciProfile::Dermatology, 6),
        (UciProfile::PenDigits, 10),
        (UciProfile::RedWine, 6),
        (UciProfile::WhiteWine, 7),
    ] {
        let (ovr, ovo) = ablation::ovr_vs_ovo_classifiers(n);
        println!("| {} | {} | {} | {} |", p.name(), n, ovr, ovo);
    }

    println!("\n# Ablation 2: MUX-ROM vs crossbar-ROM storage (crossbar needs printed ADCs)\n");
    println!("| dataset | MUX-ROM area (cm2) | crossbar area (cm2) | crossbar ADCs | crossbar power (mW) |");
    println!("|---|---|---|---|---|");
    for profile in UciProfile::all() {
        let prepared = engine.prepared(profile, DesignStyle::SequentialSvm);
        let PreparedModel::Svm(q) = &prepared.model else {
            unreachable!("sequential style prepares an SVM");
        };
        let (mux_area, xbar_area) = ablation::mux_vs_crossbar_area(q, &engine.options().lib);
        let cost = ablation::CrossbarModel::default().cost(q);
        println!(
            "| {} | {:.2} | {:.2} | {} | {:.2} |",
            profile.name(),
            mux_area,
            xbar_area,
            cost.adcs,
            cost.power_mw
        );
    }

    println!("\n# Ablation 3: PDK sensitivity of the Cardio energy advantage\n");
    println!("| PDK variant | ours E (mJ) | SVM [2] E (mJ) | ratio |");
    println!("|---|---|---|---|");
    let variants: [(&str, EgfetLibrary, TechParams); 4] = [
        ("standard", EgfetLibrary::standard(), TechParams::standard()),
        ("2x switch energy", EgfetLibrary::scaled(1.0, 1.0, 2.0, 1.0), TechParams::standard()),
        ("2x static power", EgfetLibrary::scaled(1.0, 2.0, 1.0, 1.0), TechParams::standard()),
        ("no glitch model", EgfetLibrary::standard(), TechParams::standard().with_glitch(0.0)),
    ];
    for (name, lib, tech) in &variants {
        // Memoized models: only the hardware half re-runs per variant.
        let table = engine.run_with_pdk(lib, tech);
        let ours = &table.rows[0];
        let sota = &table.rows[1];
        println!(
            "| {} | {:.3} | {:.3} | {:.2}x |",
            name,
            ours.energy_mj,
            sota.energy_mj,
            sota.energy_mj / ours.energy_mj
        );
    }
    eprintln!(
        "(models trained: {} — shared across {} PDK variants and the storage ablation)",
        engine.trainings(),
        variants.len()
    );
}
