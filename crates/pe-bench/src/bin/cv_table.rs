//! Accuracy with error bars: k-fold cross-validation of the model families
//! behind Table I's accuracy column. The paper reports a single 80/20
//! split; this attaches fold variance so accuracy deltas can be judged
//! against noise.
//!
//! Usage: `cargo run --release -p pe-bench --bin cv_table [folds]`

use pe_core::engine;
use pe_data::{Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::validate::k_fold;
use pe_ml::QuantizedSvm;

fn main() {
    let folds: usize = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(5);
    println!("# {folds}-fold cross-validated accuracy (quantized models)\n");
    println!("| dataset | OvR 4b/searched (ours) | OvO 8b/6b ([2]) |");
    println!("|---|---|---|");
    // Profiles are independent: fan them out over the engine's thread
    // helper; results come back in profile order.
    let profiles = UciProfile::all();
    let rows = engine::parallel_map(&profiles, pe_bench::grid_threads(), |profile| {
        let data = profile.generate(7);
        let p = SvmTrainParams { max_epochs: 40, ..SvmTrainParams::default() };
        let ovr = k_fold(&data, folds, 7, |train, test| {
            let norm = Normalizer::fit(train);
            let (train, test) = (norm.apply(train), norm.apply(test));
            let m = SvmModel::train(&train.quantize_inputs(4), MulticlassScheme::OneVsRest, &p);
            QuantizedSvm::quantize(&m, 4, 7).accuracy(&test)
        });
        let ovo = k_fold(&data, folds, 7, |train, test| {
            let norm = Normalizer::fit(train);
            let (train, test) = (norm.apply(train), norm.apply(test));
            let m = SvmModel::train(
                &train.quantize_inputs(8),
                MulticlassScheme::OneVsOne,
                &SvmTrainParams { balance_classes: false, ..p },
            );
            QuantizedSvm::quantize(&m, 8, 6).accuracy(&test)
        });
        format!(
            "| {} | {:.1} ± {:.1} % | {:.1} ± {:.1} % |",
            profile.name(),
            100.0 * ovr.mean(),
            100.0 * ovr.std_dev(),
            100.0 * ovo.mean(),
            100.0 * ovo.std_dev()
        )
    });
    for row in rows {
        println!("{row}");
    }
    println!("\nReading: on the wine tasks the OvR-vs-OvO gap sits within one to two");
    println!("fold standard deviations — near accuracy parity, with the hardware");
    println!("winning on energy — while PenDigits' OvO advantage is significant");
    println!("(the paper's stated exception).");
}
