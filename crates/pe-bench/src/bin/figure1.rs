//! Regenerates the quantitative content of the paper's Fig. 1 (the
//! architecture block diagram): the control / storage / compute-engine /
//! voter structure of the sequential SVM, with measured per-component cell
//! counts, area and power, plus an ASCII rendering of the block diagram.
//!
//! Usage: `cargo run --release -p pe-bench --bin figure1 [dataset]`

use pe_core::engine::ExperimentEngine;
use pe_core::pipeline::RunOptions;
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "Cardio".into());
    let profile = UciProfile::all()
        .into_iter()
        .find(|p| p.name().eq_ignore_ascii_case(&arg))
        .unwrap_or(UciProfile::Cardio);
    let engine =
        ExperimentEngine::single(profile, DesignStyle::SequentialSvm, RunOptions::default());
    let mut table = engine.run();
    let r = table.rows.remove(0);

    println!("# Fig. 1 — sequential SVM architecture ({})\n", profile.name());
    println!("```");
    println!("             +-----------+     +-----------------+");
    println!("  Input ---->|  Storage  |---->|  Compute Engine |----+");
    println!(" Features    | (MUX ROM, |     | m multipliers + |    |");
    println!("             | hardwired |     | multi-op adder  |    v");
    println!("   +-------->|  coeffs)  |     |     + bias      |  +-------+");
    println!("   |         +-----------+     +-----------------+  | Voter |--> class");
    println!("   |               ^                                | A>B?  |");
    println!("   |  +---------+  | SV select                      | 2 regs|");
    println!("   +--| Control |--+                                +-------+");
    println!("      | counter |-------- class select / done ----------^");
    println!("      +---------+");
    println!("```\n");
    println!(
        "totals: {} cells, {} FFs, {:.2} cm2, {:.2} mW, {:.1} Hz, {} cycles/inference\n",
        r.num_cells, r.num_ffs, r.area_cm2, r.power_mw, r.freq_hz, r.cycles
    );
    println!("| component | area (cm2) | share | power (mW) | share |");
    println!("|---|---|---|---|---|");
    for ((g, a), (_, p)) in r.group_area_cm2.iter().zip(&r.group_power_mw) {
        if *a <= 0.0 && *p <= 0.0 {
            continue;
        }
        println!(
            "| {} | {:.3} | {:.1}% | {:.3} | {:.1}% |",
            g,
            a,
            100.0 * a / r.area_cm2,
            p,
            100.0 * p / r.power_mw
        );
    }
    println!(
        "\nverified bit-exact against the integer golden model on {} samples ({} mismatches)",
        r.verified_samples, r.mismatches
    );
}
