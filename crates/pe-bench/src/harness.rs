//! A tiny self-contained micro-benchmark harness.
//!
//! The build environment has no crates.io access, so the Criterion bench
//! targets are driven by this module instead (`harness = false` in the
//! manifest). It keeps the parts that matter for this workspace's benches —
//! warmup, repeated timed runs, min/mean/median reporting, substring
//! filtering from the command line — and nothing else.
//!
//! Environment knobs:
//!
//! * `PE_BENCH_ITERS` — fixed iteration count per benchmark (default:
//!   adaptive, until ~1 s of samples or 30 iterations).
//! * Positional CLI args act as substring filters on `group/name`, like
//!   `cargo bench -- <filter>`.

use std::time::{Duration, Instant};

/// A named group of benchmarks with shared configuration.
pub struct BenchGroup {
    group: String,
    filters: Vec<String>,
    iters_override: Option<usize>,
}

impl BenchGroup {
    /// Creates a group, reading filters from the process arguments and
    /// iteration overrides from the environment.
    #[must_use]
    pub fn new(group: &str) -> Self {
        let filters = std::env::args().skip(1).filter(|a| !a.starts_with('-')).collect();
        let iters_override =
            std::env::var("PE_BENCH_ITERS").ok().and_then(|s| s.parse().ok()).filter(|&n| n >= 1);
        BenchGroup { group: group.to_owned(), filters, iters_override }
    }

    fn selected(&self, id: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| id.contains(f.as_str()))
    }

    /// Times `f`, printing a one-line summary. The closure should perform
    /// one complete unit of the measured work per call.
    pub fn bench(&mut self, name: &str, mut f: impl FnMut()) {
        let id = format!("{}/{}", self.group, name);
        if !self.selected(&id) {
            return;
        }
        // Warmup (also primes caches and lazy statics).
        f();
        let budget = Duration::from_secs(1);
        let max_iters = self.iters_override.unwrap_or(30);
        let mut samples = Vec::new();
        let started = Instant::now();
        while samples.len() < max_iters
            && (self.iters_override.is_some() || started.elapsed() < budget || samples.len() < 3)
        {
            let t0 = Instant::now();
            f();
            samples.push(t0.elapsed());
        }
        samples.sort_unstable();
        let min = samples[0];
        let median = samples[samples.len() / 2];
        let mean = samples.iter().sum::<Duration>() / samples.len() as u32;
        println!(
            "{id:<44} min {:>10}  median {:>10}  mean {:>10}  ({} iters)",
            fmt(min),
            fmt(median),
            fmt(mean),
            samples.len()
        );
    }
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Prevents the optimizer from deleting a computed value (stable-Rust
/// equivalent of `criterion::black_box` for our purposes).
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_formats() {
        std::env::set_var("PE_BENCH_ITERS", "2");
        let mut g = BenchGroup::new("t");
        let mut calls = 0usize;
        g.bench("noop", || calls += 1);
        assert!(calls >= 1);
        std::env::remove_var("PE_BENCH_ITERS");
    }

    #[test]
    fn duration_formatting_covers_scales() {
        assert!(fmt(Duration::from_nanos(12)).ends_with("ns"));
        assert!(fmt(Duration::from_micros(12)).ends_with("µs"));
        assert!(fmt(Duration::from_millis(12)).ends_with("ms"));
        assert!(fmt(Duration::from_secs(2)).ends_with('s'));
    }
}
