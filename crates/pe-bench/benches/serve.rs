//! Benches for the `pe-serve` serving path: coalesced 64-lane batches vs
//! one-request-per-`run_batch` serving vs the integer fast path, all on the
//! Table-I sequential SVM (Cardio).
//!
//! Run with `cargo bench -p pe-bench --bench serve`; the printed per-batch
//! times divided by the request counts give the per-request costs whose
//! ratio `loadgen --ratio` measures end to end.

use pe_bench::harness::{black_box, BenchGroup};
use pe_core::pipeline::RunOptions;
use pe_serve::{ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    let mut g = BenchGroup::new("serve");
    let registry = Arc::new(ModelRegistry::new(RunOptions::default()));
    let key = ModelKey::parse("cardio:seq").expect("key parses");
    let xs = registry.get(key).sample_requests(256);

    let coalesced = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            mode: ServeMode::Verify,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    g.bench("coalesced_verify_256_requests", || {
        let r = coalesced.classify_batch(key, &xs);
        assert!(r.iter().all(Result::is_ok));
        black_box(r);
    });

    let single = Service::start(
        Arc::clone(&registry),
        ServiceConfig { mode: ServeMode::Verify, batch_max: 1, ..ServiceConfig::default() },
    );
    g.bench("single_lane_verify_32_requests", || {
        let r = single.classify_batch(key, &xs[..32]);
        assert!(r.iter().all(Result::is_ok));
        black_box(r);
    });

    let fast = Service::start(
        Arc::clone(&registry),
        ServiceConfig {
            mode: ServeMode::Int,
            batch_deadline: Duration::from_millis(1),
            ..ServiceConfig::default()
        },
    );
    g.bench("int_fast_path_256_requests", || {
        let r = fast.classify_batch(key, &xs);
        assert!(r.iter().all(Result::is_ok));
        black_box(r);
    });

    assert_eq!(coalesced.metrics().verify_mismatches, 0);
    assert_eq!(single.metrics().verify_mismatches, 0);
}
