//! Criterion benches over Table-I row generation: the full
//! train → quantize → elaborate → verify → analyze pipeline per design
//! style.
//!
//! The `table1` *binary* regenerates the paper's exhibit; this bench
//! measures how fast the reproduction pipeline itself runs (Cardio and
//! RedWine are used as the representative small/medium datasets so the
//! bench suite stays in CI-friendly time).

use criterion::{criterion_group, criterion_main, Criterion};
use pe_core::pipeline::{run_experiment, RunOptions};
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;
use std::hint::black_box;

fn bench_opts() -> RunOptions {
    RunOptions { max_sim_samples: 20, ..RunOptions::default() }
}

fn bench_rows(c: &mut Criterion) {
    let mut g = c.benchmark_group("table1_row");
    g.sample_size(10);
    for (profile, style, name) in [
        (UciProfile::Cardio, DesignStyle::SequentialSvm, "cardio_ours"),
        (UciProfile::Cardio, DesignStyle::ParallelSvm, "cardio_svm2"),
        (UciProfile::Cardio, DesignStyle::ApproxParallelSvm, "cardio_svm3"),
        (UciProfile::Cardio, DesignStyle::ParallelMlp, "cardio_mlp4"),
        (UciProfile::RedWine, DesignStyle::SequentialSvm, "redwine_ours"),
        (UciProfile::RedWine, DesignStyle::ParallelSvm, "redwine_svm2"),
    ] {
        let opts = bench_opts();
        g.bench_function(name, |b| {
            b.iter(|| black_box(run_experiment(profile, style, &opts)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_rows);
criterion_main!(benches);
