//! Benches over Table-I row generation: the full train → quantize →
//! elaborate → verify → analyze pipeline per design style, plus the
//! engine's parallel-grid scaling.
//!
//! The `table1` *binary* regenerates the paper's exhibit; this bench
//! measures how fast the reproduction pipeline itself runs (Cardio and
//! RedWine are used as the representative small/medium datasets so the
//! bench suite stays in CI-friendly time).

use pe_bench::harness::{black_box, BenchGroup};
use pe_core::engine::{ExperimentEngine, Job};
use pe_core::pipeline::RunOptions;
use pe_core::styles::DesignStyle;
use pe_data::UciProfile;

fn bench_opts() -> RunOptions {
    RunOptions { max_sim_samples: 20, ..RunOptions::default() }
}

fn bench_rows(g: &mut BenchGroup) {
    for (profile, style, name) in [
        (UciProfile::Cardio, DesignStyle::SequentialSvm, "cardio_ours"),
        (UciProfile::Cardio, DesignStyle::ParallelSvm, "cardio_svm2"),
        (UciProfile::Cardio, DesignStyle::ApproxParallelSvm, "cardio_svm3"),
        (UciProfile::Cardio, DesignStyle::ParallelMlp, "cardio_mlp4"),
        (UciProfile::RedWine, DesignStyle::SequentialSvm, "redwine_ours"),
        (UciProfile::RedWine, DesignStyle::ParallelSvm, "redwine_svm2"),
    ] {
        g.bench(name, || {
            black_box(ExperimentEngine::single(profile, style, bench_opts()).run());
        });
    }
}

fn bench_grid_scaling(g: &mut BenchGroup) {
    // One dataset, all four styles: how much the scoped-thread engine buys.
    let jobs: Vec<Job> =
        DesignStyle::all().into_iter().map(|s| Job::new(UciProfile::Cardio, s)).collect();
    for (threads, name) in [(1usize, "cardio_grid_1_thread"), (4, "cardio_grid_4_threads")] {
        let jobs = jobs.clone();
        g.bench(name, move || {
            black_box(
                ExperimentEngine::new(jobs.clone(), bench_opts()).with_threads(threads).run(),
            );
        });
    }
}

fn main() {
    let mut g = BenchGroup::new("table1_row");
    bench_rows(&mut g);
    let mut g = BenchGroup::new("engine");
    bench_grid_scaling(&mut g);
}
