//! Criterion benches for the heavy kernels each pipeline stage runs:
//! SVM training, netlist elaboration, gate-level simulation and the
//! STA/area/power analyses.

use criterion::{criterion_group, criterion_main, Criterion};
use pe_cells::{EgfetLibrary, TechParams};
use pe_core::designs::{parallel, sequential};
use pe_data::{train_test_split, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::QuantizedSvm;
use pe_sim::Simulator;
use std::hint::black_box;

struct Fixture {
    train: pe_data::Dataset,
    test: pe_data::Dataset,
    q_ovr: QuantizedSvm,
    q_ovo: QuantizedSvm,
}

fn fixture() -> Fixture {
    let d = UciProfile::Cardio.generate(7);
    let (train, test) = train_test_split(&d, 0.2, 7);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let p = SvmTrainParams::default();
    let ovr = SvmModel::train(&train, MulticlassScheme::OneVsRest, &p);
    let ovo = SvmModel::train(
        &train,
        MulticlassScheme::OneVsOne,
        &SvmTrainParams { balance_classes: false, ..p },
    );
    Fixture {
        q_ovr: QuantizedSvm::quantize(&ovr, 4, 6),
        q_ovo: QuantizedSvm::quantize(&ovo, 8, 6),
        train,
        test,
    }
}

fn bench_training(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("training");
    g.sample_size(10);
    g.bench_function("svm_ovr_cardio", |b| {
        b.iter(|| {
            black_box(SvmModel::train(
                &f.train,
                MulticlassScheme::OneVsRest,
                &SvmTrainParams { max_epochs: 30, ..SvmTrainParams::default() },
            ))
        })
    });
    g.finish();
}

fn bench_elaboration(c: &mut Criterion) {
    let f = fixture();
    let mut g = c.benchmark_group("elaboration");
    g.bench_function("sequential_cardio", |b| {
        b.iter(|| black_box(sequential::build_sequential_ovr(&f.q_ovr)))
    });
    g.bench_function("parallel_ovo_cardio", |b| {
        b.iter(|| black_box(parallel::build_parallel_svm(&f.q_ovo)))
    });
    g.finish();
}

fn bench_simulation(c: &mut Criterion) {
    let f = fixture();
    let nl = sequential::build_sequential_ovr(&f.q_ovr);
    let samples: Vec<Vec<i64>> = f
        .test
        .features()
        .iter()
        .take(16)
        .map(|x| f.q_ovr.quantize_input(x))
        .collect();
    let mut g = c.benchmark_group("simulation");
    g.bench_function("sequential_16_classifications", |b| {
        b.iter(|| {
            let mut sim = Simulator::new(&nl).unwrap();
            for xq in &samples {
                for (i, &v) in xq.iter().enumerate() {
                    sim.set_input(&format!("x{i}"), v);
                }
                for _ in 0..3 {
                    sim.tick();
                }
                black_box(sim.output_unsigned("class"));
            }
        })
    });
    g.finish();
}

fn bench_analysis(c: &mut Criterion) {
    let f = fixture();
    let nl = parallel::build_parallel_svm(&f.q_ovo);
    let lib = EgfetLibrary::standard();
    let tech = TechParams::standard();
    let mut g = c.benchmark_group("analysis");
    g.bench_function("sta_parallel_cardio", |b| {
        b.iter(|| black_box(pe_synth::analyze_timing(&nl, &lib, &tech).unwrap()))
    });
    g.bench_function("area_parallel_cardio", |b| {
        b.iter(|| black_box(pe_synth::analyze_area(&nl, &lib)))
    });
    let activity = pe_sim::ActivityReport::uniform(nl.num_nets(), 100, 0.3);
    g.bench_function("power_parallel_cardio", |b| {
        b.iter(|| {
            black_box(pe_synth::analyze_power(&nl, &lib, &tech, &activity, 20.0).unwrap())
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_training,
    bench_elaboration,
    bench_simulation,
    bench_analysis
);
criterion_main!(benches);
