//! Benches for the heavy kernels each pipeline stage runs: SVM training,
//! netlist elaboration, batched gate-level simulation and the STA/area/
//! power analyses.

use pe_bench::harness::{black_box, BenchGroup};
use pe_cells::{EgfetLibrary, TechParams};
use pe_core::designs::{parallel, sequential};
use pe_data::{train_test_split, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::QuantizedSvm;
use pe_sim::collapse::fault_campaign_seq_ppsfp_collapsed;
use pe_sim::faults::{
    enumerate_fault_sites, fault_campaign_seq_ppsfp_wide, fault_campaign_seq_ppsfp_wide_opts,
};
use pe_sim::{BatchMode, ConeMode, LaneWidth, Simulator};
use std::time::Instant;

struct Fixture {
    train: pe_data::Dataset,
    test: pe_data::Dataset,
    q_ovr: QuantizedSvm,
    q_ovo: QuantizedSvm,
}

fn fixture() -> Fixture {
    let d = UciProfile::Cardio.generate(7);
    let (train, test) = train_test_split(&d, 0.2, 7);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let p = SvmTrainParams::default();
    let ovr = SvmModel::train(&train, MulticlassScheme::OneVsRest, &p);
    let ovo = SvmModel::train(
        &train,
        MulticlassScheme::OneVsOne,
        &SvmTrainParams { balance_classes: false, ..p },
    );
    Fixture {
        q_ovr: QuantizedSvm::quantize(&ovr, 4, 6),
        q_ovo: QuantizedSvm::quantize(&ovo, 8, 6),
        train,
        test,
    }
}

fn bench_training(g: &mut BenchGroup, f: &Fixture) {
    g.bench("svm_ovr_cardio", || {
        black_box(SvmModel::train(
            &f.train,
            MulticlassScheme::OneVsRest,
            &SvmTrainParams { max_epochs: 30, ..SvmTrainParams::default() },
        ));
    });
}

fn bench_elaboration(g: &mut BenchGroup, f: &Fixture) {
    g.bench("sequential_cardio", || {
        black_box(sequential::build_sequential_ovr(&f.q_ovr));
    });
    g.bench("parallel_ovo_cardio", || {
        black_box(parallel::build_parallel_svm(&f.q_ovo));
    });
}

fn bench_simulation(g: &mut BenchGroup, f: &Fixture) {
    let nl = sequential::build_sequential_ovr(&f.q_ovr);
    let samples: Vec<Vec<i64>> =
        f.test.features().iter().take(16).map(|x| f.q_ovr.quantize_input(x)).collect();
    g.bench("sequential_16_classifications", || {
        let mut sim = Simulator::new(&nl).unwrap();
        black_box(sim.run_batch(&samples, 3, "class"));
    });
}

/// Scalar vs. bit-sliced `run_batch` on a full 64-vector chunk of the
/// Table-I sequential SVM circuit: the kernel the bit-slicing PR exists
/// for. Reports both engines through the harness and prints the measured
/// speedup (acceptance floor: 8x on this batch).
fn bench_bitslice_speedup(g: &mut BenchGroup, f: &Fixture) {
    let nl = sequential::build_sequential_ovr(&f.q_ovr);
    let samples: Vec<Vec<i64>> =
        f.test.features().iter().cycle().take(64).map(|x| f.q_ovr.quantize_input(x)).collect();
    g.bench("scalar_64_classifications", || {
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(BatchMode::Scalar);
        black_box(sim.run_batch(&samples, 3, "class"));
    });
    g.bench("bitsliced_64_classifications", || {
        let mut sim = Simulator::new(&nl).unwrap();
        black_box(sim.run_batch(&samples, 3, "class"));
    });
    // Direct head-to-head on identical fresh simulators (batch only, no
    // scheduling), so the printed ratio isolates the kernel speedup.
    let time = |mode: BatchMode| {
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(mode);
        sim.run_batch(&samples, 3, "class"); // warm up
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(mode);
        let t0 = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            black_box(sim.run_batch(&samples, 3, "class"));
        }
        t0.elapsed() / reps
    };
    let scalar = time(BatchMode::Scalar);
    let sliced = time(BatchMode::BitSliced);
    println!(
        "simulation/bitslice_speedup                  {:.1}x  (scalar {:?} / bit-sliced {:?} per 64-vector batch)",
        scalar.as_secs_f64() / sliced.as_secs_f64(),
        scalar,
        sliced
    );
}

/// One row of the lane-width sweep: `run_batch` over the same 512-vector
/// Table-I workload at each slab width.
struct WidthRow {
    words: usize,
    secs: f64,
    vectors_per_sec: f64,
    speedup_vs_scalar: f64,
    speedup_vs_w1: f64,
}

/// Times one closure as the median of `reps` runs.
fn median_secs(reps: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm up
    let mut samples: Vec<f64> = (0..reps)
        .map(|_| {
            let t0 = Instant::now();
            f();
            t0.elapsed().as_secs_f64()
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// The tentpole measurement: the same 512-classification sequential-SVM
/// batch at every slab width (64–512 packed vectors per sweep), against the
/// scalar engine; plus the PPSFP sweep-count payoff on a >64-site fault
/// campaign. Writes `BENCH_kernels.json` with the raw numbers.
fn bench_width_sweep(g: &mut BenchGroup, f: &Fixture) {
    let nl = sequential::build_sequential_ovr(&f.q_ovr);
    let samples: Vec<Vec<i64>> =
        f.test.features().iter().cycle().take(512).map(|x| f.q_ovr.quantize_input(x)).collect();
    let reps = 5;
    let time_width = |width: LaneWidth| {
        median_secs(reps, || {
            let mut sim = Simulator::new(&nl).unwrap();
            sim.set_lane_width(width);
            black_box(sim.run_batch(&samples, 3, "class"));
        })
    };
    let scalar_secs = median_secs(reps, || {
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(BatchMode::Scalar);
        black_box(sim.run_batch(&samples, 3, "class"));
    });
    for width in LaneWidth::ALL {
        g.bench(&format!("bitsliced_512_classifications_w{width}"), || {
            let mut sim = Simulator::new(&nl).unwrap();
            sim.set_lane_width(width);
            black_box(sim.run_batch(&samples, 3, "class"));
        });
    }
    let w1_secs = time_width(LaneWidth::W1);
    let rows: Vec<WidthRow> = LaneWidth::ALL
        .into_iter()
        .map(|width| {
            let secs = if width == LaneWidth::W1 { w1_secs } else { time_width(width) };
            WidthRow {
                words: width.words(),
                secs,
                vectors_per_sec: samples.len() as f64 / secs,
                speedup_vs_scalar: scalar_secs / secs,
                speedup_vs_w1: w1_secs / secs,
            }
        })
        .collect();
    let best = rows.iter().max_by(|a, b| a.speedup_vs_w1.total_cmp(&b.speedup_vs_w1)).unwrap();
    println!(
        "simulation/width_sweep                       best W={} ({:.2}x vs W=1, {:.1}x vs scalar, {:.0} vectors/s on 512x3-cycle cardio:seq)",
        best.words, best.speedup_vs_w1, best.speedup_vs_scalar, best.vectors_per_sec
    );

    // PPSFP occupancy: a campaign with more than 64 sites needs
    // ceil(sites / 64W) sweeps — wider slabs finish in fewer sweeps.
    let sites = enumerate_fault_sites(&nl);
    let workload: Vec<Vec<(String, i64)>> = samples
        .iter()
        .take(12)
        .map(|x| x.iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect())
        .collect();
    assert!(sites.len() > 64, "cardio:seq must expose a >64-site campaign");
    let ppsfp: Vec<(usize, usize, f64)> = LaneWidth::ALL
        .into_iter()
        .map(|width| {
            let sweeps = sites.len().div_ceil(width.lanes());
            let secs = median_secs(3, || {
                black_box(
                    fault_campaign_seq_ppsfp_wide(&nl, &sites, &workload, "class", 3, width)
                        .unwrap(),
                );
            });
            (width.words(), sweeps, secs)
        })
        .collect();
    println!(
        "faults/ppsfp_width_sweep                     {} sites: {} sweeps at W=1 -> {} at W=8 ({:.2}x faster)",
        sites.len(),
        ppsfp[0].1,
        ppsfp[3].1,
        ppsfp[0].2 / ppsfp[3].2
    );

    // Cone-scheduled PPSFP on the same full Table-I campaign: chunks whose
    // union fanout cone is sparse run through the cone pass, the rest fall
    // back to the dense sweep — verdicts identical, cell evaluations
    // counted both ways. Sites enumerate in netlist (≈ topological) order,
    // so the output-side chunks are the ones with small cones.
    let cone_width = LaneWidth::W8;
    let (auto_report, auto_stats) = fault_campaign_seq_ppsfp_wide_opts(
        &nl,
        &sites,
        &workload,
        "class",
        3,
        cone_width,
        ConeMode::Auto,
    )
    .unwrap();
    let (never_report, never_stats) = fault_campaign_seq_ppsfp_wide_opts(
        &nl,
        &sites,
        &workload,
        "class",
        3,
        cone_width,
        ConeMode::Never,
    )
    .unwrap();
    assert_eq!(auto_report, never_report, "cone-scheduled verdicts must be bit-identical");
    let avoided_pct = 100.0 * (1.0 - auto_stats.cell_evals as f64 / never_stats.cell_evals as f64);
    let auto_secs = median_secs(3, || {
        black_box(
            fault_campaign_seq_ppsfp_wide_opts(
                &nl,
                &sites,
                &workload,
                "class",
                3,
                cone_width,
                ConeMode::Auto,
            )
            .unwrap(),
        );
    });
    let never_secs = median_secs(3, || {
        black_box(
            fault_campaign_seq_ppsfp_wide_opts(
                &nl,
                &sites,
                &workload,
                "class",
                3,
                cone_width,
                ConeMode::Never,
            )
            .unwrap(),
        );
    });
    println!(
        "faults/cone_scheduling                       {}/{} chunks through cones at W=8, {:.1}% cell evals avoided ({:.2}x faster)",
        auto_stats.cone_chunks,
        auto_stats.chunks,
        avoided_pct,
        never_secs / auto_secs
    );

    // Static + workload fault collapsing on the same full campaign: the
    // collapsed path retires equivalence-class duplicates, unobservable
    // cones, and workload-quiescent sites before pinning any lane, then
    // expands the representatives' verdicts back over all sites. The gate:
    // the report must be bit-identical and at least 20 % of the sites must
    // collapse away. (The analysis is a fixed per-campaign cost, so the
    // wall-clock payoff appears on scalar/narrow engines and long
    // workloads; at W=8 the full sweep is already only a few sweeps, and
    // the honest speedup below can dip under 1x.)
    let t_collapse = Instant::now();
    let (collapsed_report, cstats) =
        fault_campaign_seq_ppsfp_collapsed(&nl, &sites, &workload, "class", 3, cone_width).unwrap();
    let collapsed_secs = t_collapse.elapsed().as_secs_f64();
    assert_eq!(
        collapsed_report, auto_report,
        "collapsed campaign must be bit-identical to the full campaign"
    );
    assert!(
        cstats.reduction() >= 0.20,
        "fault collapsing must retire >= 20 % of the {} sites (got {:.1} %)",
        cstats.sites,
        100.0 * cstats.reduction()
    );
    let collapsed_sweeps = cstats.simulated.div_ceil(cone_width.lanes());
    println!(
        "faults/collapse                              {} sites -> {} simulated ({:.1}% collapsed: {} merged into classes, {} statically-benign classes, {} workload-quiet), {} sweeps -> {}, bit-identical",
        cstats.sites,
        cstats.simulated,
        100.0 * cstats.reduction(),
        cstats.sites - cstats.classes,
        cstats.static_benign,
        cstats.workload_benign,
        sites.len().div_ceil(cone_width.lanes()),
        collapsed_sweeps,
    );

    // Machine-readable record for the acceptance gates and the README.
    let width_json: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"words\": {}, \"secs\": {:.6}, \"vectors_per_sec\": {:.0}, \
                 \"speedup_vs_scalar\": {:.3}, \"speedup_vs_w1\": {:.3}}}",
                r.words, r.secs, r.vectors_per_sec, r.speedup_vs_scalar, r.speedup_vs_w1
            )
        })
        .collect();
    let ppsfp_json: Vec<String> = ppsfp
        .iter()
        .map(|(words, sweeps, secs)| {
            format!("{{\"words\": {words}, \"sweeps\": {sweeps}, \"secs\": {secs:.6}}}")
        })
        .collect();
    let json = format!(
        "{{\n  \"workload\": \"cardio:seq, 512 classifications x 3 cycles\",\n  \
         \"scalar_secs\": {:.6},\n  \"scalar_vectors_per_sec\": {:.0},\n  \
         \"widths\": [\n    {}\n  ],\n  \"best_words\": {},\n  \
         \"best_speedup_vs_w1\": {:.3},\n  \"ppsfp\": {{\n    \"sites\": {},\n    \
         \"workload_vectors\": {},\n    \"sweep\": [\n      {}\n    ]\n  }},\n  \
         \"cone\": {{\n    \"width_words\": {},\n    \"chunks\": {},\n    \
         \"cone_chunks\": {},\n    \"fallback_chunks\": {},\n    \
         \"cell_evals_auto\": {},\n    \"cell_evals_full\": {},\n    \
         \"cell_evals_avoided_pct\": {:.1},\n    \"auto_secs\": {:.6},\n    \
         \"full_secs\": {:.6}\n  }},\n  \
         \"collapse\": {{\n    \"sites\": {},\n    \"classes\": {},\n    \
         \"static_benign_classes\": {},\n    \"workload_quiet\": {},\n    \
         \"simulated\": {},\n    \"reduction\": {:.4},\n    \
         \"collapsed_secs\": {:.6},\n    \"full_secs\": {:.6},\n    \
         \"speedup\": {:.3}\n  }}\n}}\n",
        scalar_secs,
        samples.len() as f64 / scalar_secs,
        width_json.join(",\n    "),
        best.words,
        best.speedup_vs_w1,
        sites.len(),
        workload.len(),
        ppsfp_json.join(",\n      "),
        cone_width.words(),
        auto_stats.chunks,
        auto_stats.cone_chunks,
        auto_stats.fallback_chunks,
        auto_stats.cell_evals,
        never_stats.cell_evals,
        avoided_pct,
        auto_secs,
        never_secs,
        cstats.sites,
        cstats.classes,
        cstats.static_benign,
        cstats.workload_benign,
        cstats.simulated,
        cstats.reduction(),
        collapsed_secs,
        auto_secs,
        auto_secs / collapsed_secs.max(1e-9),
    );
    // Anchor to the workspace root: cargo runs bench binaries with the
    // package directory as cwd.
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernels.json");
    if let Err(e) = std::fs::write(out, &json) {
        eprintln!("kernels: cannot write BENCH_kernels.json: {e}");
    } else {
        println!("wrote BENCH_kernels.json");
    }
}

fn bench_analysis(g: &mut BenchGroup, f: &Fixture) {
    let nl = parallel::build_parallel_svm(&f.q_ovo);
    let lib = EgfetLibrary::standard();
    let tech = TechParams::standard();
    g.bench("sta_parallel_cardio", || {
        black_box(pe_synth::analyze_timing(&nl, &lib, &tech).unwrap());
    });
    g.bench("area_parallel_cardio", || {
        black_box(pe_synth::analyze_area(&nl, &lib));
    });
    let activity = pe_sim::ActivityReport::uniform(nl.num_nets(), 100, 0.3);
    g.bench("power_parallel_cardio", || {
        black_box(pe_synth::analyze_power(&nl, &lib, &tech, &activity, 20.0).unwrap());
    });
}

fn main() {
    let f = fixture();
    let mut g = BenchGroup::new("training");
    bench_training(&mut g, &f);
    let mut g = BenchGroup::new("elaboration");
    bench_elaboration(&mut g, &f);
    let mut g = BenchGroup::new("simulation");
    bench_simulation(&mut g, &f);
    bench_bitslice_speedup(&mut g, &f);
    bench_width_sweep(&mut g, &f);
    let mut g = BenchGroup::new("analysis");
    bench_analysis(&mut g, &f);
}
