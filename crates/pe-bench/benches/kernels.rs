//! Benches for the heavy kernels each pipeline stage runs: SVM training,
//! netlist elaboration, batched gate-level simulation and the STA/area/
//! power analyses.

use pe_bench::harness::{black_box, BenchGroup};
use pe_cells::{EgfetLibrary, TechParams};
use pe_core::designs::{parallel, sequential};
use pe_data::{train_test_split, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::QuantizedSvm;
use pe_sim::{BatchMode, Simulator};

struct Fixture {
    train: pe_data::Dataset,
    test: pe_data::Dataset,
    q_ovr: QuantizedSvm,
    q_ovo: QuantizedSvm,
}

fn fixture() -> Fixture {
    let d = UciProfile::Cardio.generate(7);
    let (train, test) = train_test_split(&d, 0.2, 7);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let p = SvmTrainParams::default();
    let ovr = SvmModel::train(&train, MulticlassScheme::OneVsRest, &p);
    let ovo = SvmModel::train(
        &train,
        MulticlassScheme::OneVsOne,
        &SvmTrainParams { balance_classes: false, ..p },
    );
    Fixture {
        q_ovr: QuantizedSvm::quantize(&ovr, 4, 6),
        q_ovo: QuantizedSvm::quantize(&ovo, 8, 6),
        train,
        test,
    }
}

fn bench_training(g: &mut BenchGroup, f: &Fixture) {
    g.bench("svm_ovr_cardio", || {
        black_box(SvmModel::train(
            &f.train,
            MulticlassScheme::OneVsRest,
            &SvmTrainParams { max_epochs: 30, ..SvmTrainParams::default() },
        ));
    });
}

fn bench_elaboration(g: &mut BenchGroup, f: &Fixture) {
    g.bench("sequential_cardio", || {
        black_box(sequential::build_sequential_ovr(&f.q_ovr));
    });
    g.bench("parallel_ovo_cardio", || {
        black_box(parallel::build_parallel_svm(&f.q_ovo));
    });
}

fn bench_simulation(g: &mut BenchGroup, f: &Fixture) {
    let nl = sequential::build_sequential_ovr(&f.q_ovr);
    let samples: Vec<Vec<i64>> =
        f.test.features().iter().take(16).map(|x| f.q_ovr.quantize_input(x)).collect();
    g.bench("sequential_16_classifications", || {
        let mut sim = Simulator::new(&nl).unwrap();
        black_box(sim.run_batch(&samples, 3, "class"));
    });
}

/// Scalar vs. bit-sliced `run_batch` on a full 64-vector chunk of the
/// Table-I sequential SVM circuit: the kernel the bit-slicing PR exists
/// for. Reports both engines through the harness and prints the measured
/// speedup (acceptance floor: 8x on this batch).
fn bench_bitslice_speedup(g: &mut BenchGroup, f: &Fixture) {
    let nl = sequential::build_sequential_ovr(&f.q_ovr);
    let samples: Vec<Vec<i64>> =
        f.test.features().iter().cycle().take(64).map(|x| f.q_ovr.quantize_input(x)).collect();
    g.bench("scalar_64_classifications", || {
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(BatchMode::Scalar);
        black_box(sim.run_batch(&samples, 3, "class"));
    });
    g.bench("bitsliced_64_classifications", || {
        let mut sim = Simulator::new(&nl).unwrap();
        black_box(sim.run_batch(&samples, 3, "class"));
    });
    // Direct head-to-head on identical fresh simulators (batch only, no
    // scheduling), so the printed ratio isolates the kernel speedup.
    let time = |mode: BatchMode| {
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(mode);
        sim.run_batch(&samples, 3, "class"); // warm up
        let mut sim = Simulator::new(&nl).unwrap();
        sim.set_batch_mode(mode);
        let t0 = std::time::Instant::now();
        let reps = 5;
        for _ in 0..reps {
            black_box(sim.run_batch(&samples, 3, "class"));
        }
        t0.elapsed() / reps
    };
    let scalar = time(BatchMode::Scalar);
    let sliced = time(BatchMode::BitSliced);
    println!(
        "simulation/bitslice_speedup                  {:.1}x  (scalar {:?} / bit-sliced {:?} per 64-vector batch)",
        scalar.as_secs_f64() / sliced.as_secs_f64(),
        scalar,
        sliced
    );
}

fn bench_analysis(g: &mut BenchGroup, f: &Fixture) {
    let nl = parallel::build_parallel_svm(&f.q_ovo);
    let lib = EgfetLibrary::standard();
    let tech = TechParams::standard();
    g.bench("sta_parallel_cardio", || {
        black_box(pe_synth::analyze_timing(&nl, &lib, &tech).unwrap());
    });
    g.bench("area_parallel_cardio", || {
        black_box(pe_synth::analyze_area(&nl, &lib));
    });
    let activity = pe_sim::ActivityReport::uniform(nl.num_nets(), 100, 0.3);
    g.bench("power_parallel_cardio", || {
        black_box(pe_synth::analyze_power(&nl, &lib, &tech, &activity, 20.0).unwrap());
    });
}

fn main() {
    let f = fixture();
    let mut g = BenchGroup::new("training");
    bench_training(&mut g, &f);
    let mut g = BenchGroup::new("elaboration");
    bench_elaboration(&mut g, &f);
    let mut g = BenchGroup::new("simulation");
    bench_simulation(&mut g, &f);
    bench_bitslice_speedup(&mut g, &f);
    let mut g = BenchGroup::new("analysis");
    bench_analysis(&mut g, &f);
}
