//! Benches for the §II design-choice ablations: the cost of the structures
//! the paper argues about (MUX-ROM storage, OvR vs OvO voter hardware,
//! balanced tree vs serial chain accumulation).

use pe_bench::harness::{black_box, BenchGroup};
use pe_core::ablation;
use pe_data::{train_test_split, Normalizer, UciProfile};
use pe_ml::linear::SvmTrainParams;
use pe_ml::multiclass::{MulticlassScheme, SvmModel};
use pe_ml::QuantizedSvm;
use pe_netlist::{Builder, Word};
use pe_synth::tree;

fn model(scheme: MulticlassScheme) -> QuantizedSvm {
    let d = UciProfile::Dermatology.generate(7);
    let (train, _) = train_test_split(&d, 0.2, 7);
    let train = Normalizer::fit(&train).apply(&train);
    let p = SvmTrainParams { max_epochs: 30, ..SvmTrainParams::default() };
    QuantizedSvm::quantize(&SvmModel::train(&train, scheme, &p), 4, 6)
}

fn bench_storage(g: &mut BenchGroup) {
    let q_ovr = model(MulticlassScheme::OneVsRest);
    let q_ovo = model(MulticlassScheme::OneVsOne);
    g.bench("mux_rom_ovr_6class", || {
        black_box(ablation::build_storage_only(&q_ovr));
    });
    g.bench("mux_rom_ovo_15pairs", || {
        black_box(ablation::build_storage_only(&q_ovo));
    });
}

fn bench_accumulation(g: &mut BenchGroup) {
    for &n in &[8usize, 21, 34] {
        g.bench(&format!("tree_{n}_terms"), || {
            let mut bld = Builder::new("t");
            let words: Vec<Word> =
                (0..n).map(|i| Word::new(bld.input_bus(format!("i{i}"), 10), true)).collect();
            let s = tree::sum_tree(&mut bld, &words);
            bld.output_bus("s", s.bits());
            black_box(bld.finish());
        });
        g.bench(&format!("chain_{n}_terms"), || {
            let mut bld = Builder::new("t");
            let words: Vec<Word> =
                (0..n).map(|i| Word::new(bld.input_bus(format!("i{i}"), 10), true)).collect();
            let s = tree::sum_chain(&mut bld, &words);
            bld.output_bus("s", s.bits());
            black_box(bld.finish());
        });
    }
}

fn main() {
    let mut g = BenchGroup::new("storage_elaboration");
    bench_storage(&mut g);
    let mut g = BenchGroup::new("accumulation_elaboration");
    bench_accumulation(&mut g);
}
