//! A small one-hidden-layer MLP — the bespoke printed-MLP baseline \[4\].
//!
//! Architecture: `logits = W2 · relu(W1 · x + b1) + b2`, trained with
//! mini-batch SGD on softmax cross-entropy. Printed MLPs are tiny (a few
//! hidden neurons), so plain SGD with a seeded init is entirely adequate and
//! keeps training deterministic.

use pe_data::metrics::accuracy;
use pe_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// MLP training hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MlpTrainParams {
    /// Hidden-layer width (printed MLPs use single-digit counts).
    pub hidden: usize,
    /// Training epochs.
    pub epochs: usize,
    /// SGD learning rate.
    pub learning_rate: f64,
    /// Mini-batch size.
    pub batch: usize,
    /// Seed for init and shuffling.
    pub seed: u64,
}

impl Default for MlpTrainParams {
    fn default() -> Self {
        MlpTrainParams { hidden: 8, epochs: 150, learning_rate: 0.08, batch: 16, seed: 0x71a9 }
    }
}

/// A trained MLP.
#[derive(Debug, Clone, PartialEq)]
pub struct Mlp {
    /// `w1[h][i]`: input `i` to hidden `h`.
    w1: Vec<Vec<f64>>,
    b1: Vec<f64>,
    /// `w2[o][h]`: hidden `h` to output `o`.
    w2: Vec<Vec<f64>>,
    b2: Vec<f64>,
}

impl Mlp {
    /// Trains on a dataset.
    ///
    /// # Panics
    ///
    /// Panics on an empty dataset or zero-sized hyper-parameters.
    #[must_use]
    pub fn train(data: &Dataset, params: &MlpTrainParams) -> Self {
        assert!(params.hidden >= 1 && params.epochs >= 1 && params.batch >= 1);
        assert!(params.learning_rate > 0.0);
        let d_in = data.num_features();
        let d_out = data.num_classes();
        let h = params.hidden;
        let mut rng = StdRng::seed_from_u64(params.seed);
        let init = |fan_in: usize| {
            let scale = (1.0 / fan_in as f64).sqrt();
            move |rng: &mut StdRng| (rng.gen::<f64>() * 2.0 - 1.0) * scale
        };
        let i1 = init(d_in);
        let mut w1: Vec<Vec<f64>> =
            (0..h).map(|_| (0..d_in).map(|_| i1(&mut rng)).collect()).collect();
        let mut b1 = vec![0.0f64; h];
        let i2 = init(h);
        let mut w2: Vec<Vec<f64>> =
            (0..d_out).map(|_| (0..h).map(|_| i2(&mut rng)).collect()).collect();
        let mut b2 = vec![0.0f64; d_out];

        let mut order: Vec<usize> = (0..data.len()).collect();
        for _ in 0..params.epochs {
            order.shuffle(&mut rng);
            for chunk in order.chunks(params.batch) {
                // Accumulate gradients over the mini-batch.
                let mut g_w1 = vec![vec![0.0; d_in]; h];
                let mut g_b1 = vec![0.0; h];
                let mut g_w2 = vec![vec![0.0; h]; d_out];
                let mut g_b2 = vec![0.0; d_out];
                for &i in chunk {
                    let (x, label) = data.sample(i);
                    // Forward.
                    let mut hidden = vec![0.0f64; h];
                    for (hi, row) in w1.iter().enumerate() {
                        let z: f64 = row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + b1[hi];
                        hidden[hi] = z.max(0.0);
                    }
                    let mut logits = vec![0.0f64; d_out];
                    for (oi, row) in w2.iter().enumerate() {
                        logits[oi] =
                            row.iter().zip(&hidden).map(|(w, v)| w * v).sum::<f64>() + b2[oi];
                    }
                    // Softmax + cross-entropy gradient: p - onehot.
                    let max = logits.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
                    let exps: Vec<f64> = logits.iter().map(|&l| (l - max).exp()).collect();
                    let sum: f64 = exps.iter().sum();
                    let mut delta_out: Vec<f64> = exps.iter().map(|&e| e / sum).collect();
                    delta_out[label] -= 1.0;
                    // Backward.
                    for oi in 0..d_out {
                        for hi in 0..h {
                            g_w2[oi][hi] += delta_out[oi] * hidden[hi];
                        }
                        g_b2[oi] += delta_out[oi];
                    }
                    for hi in 0..h {
                        if hidden[hi] <= 0.0 {
                            continue; // ReLU gate closed
                        }
                        let delta_h: f64 = (0..d_out).map(|oi| delta_out[oi] * w2[oi][hi]).sum();
                        for (g, &v) in g_w1[hi].iter_mut().zip(x) {
                            *g += delta_h * v;
                        }
                        g_b1[hi] += delta_h;
                    }
                }
                let lr = params.learning_rate / chunk.len() as f64;
                for hi in 0..h {
                    for (w, g) in w1[hi].iter_mut().zip(&g_w1[hi]) {
                        *w -= lr * g;
                    }
                    b1[hi] -= lr * g_b1[hi];
                }
                for oi in 0..d_out {
                    for (w, g) in w2[oi].iter_mut().zip(&g_w2[oi]) {
                        *w -= lr * g;
                    }
                    b2[oi] -= lr * g_b2[oi];
                }
            }
        }
        Mlp { w1, b1, w2, b2 }
    }

    /// Hidden-layer weights (`[hidden][input]`).
    #[must_use]
    pub fn w1(&self) -> &[Vec<f64>] {
        &self.w1
    }

    /// Hidden-layer biases.
    #[must_use]
    pub fn b1(&self) -> &[f64] {
        &self.b1
    }

    /// Output-layer weights (`[output][hidden]`).
    #[must_use]
    pub fn w2(&self) -> &[Vec<f64>] {
        &self.w2
    }

    /// Output-layer biases.
    #[must_use]
    pub fn b2(&self) -> &[f64] {
        &self.b2
    }

    /// Hidden activations for one sample (used for quantization
    /// calibration).
    #[must_use]
    pub fn hidden(&self, x: &[f64]) -> Vec<f64> {
        self.w1
            .iter()
            .zip(&self.b1)
            .map(|(row, &b)| (row.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + b).max(0.0))
            .collect()
    }

    /// Class prediction: argmax of logits (ties to the lower index).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        let h = self.hidden(x);
        let mut best = 0usize;
        let mut best_score = f64::NEG_INFINITY;
        for (oi, (row, &b)) in self.w2.iter().zip(&self.b2).enumerate() {
            let z = row.iter().zip(&h).map(|(w, v)| w * v).sum::<f64>() + b;
            if z > best_score {
                best_score = z;
                best = oi;
            }
        }
        best
    }

    /// Test accuracy on a dataset.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let preds: Vec<usize> = data.features().iter().map(|x| self.predict(x)).collect();
        accuracy(&preds, data.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_data::{train_test_split, Normalizer, UciProfile};

    #[test]
    fn learns_xor_like_blobs() {
        // Four clusters in XOR arrangement: not linearly separable, an MLP
        // must solve it.
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        for i in 0..200 {
            let jx = ((i * 13) % 17) as f64 * 0.004;
            let jy = ((i * 7) % 19) as f64 * 0.004;
            let (cx, cy, l) = match i % 4 {
                0 => (0.2, 0.2, 0),
                1 => (0.8, 0.8, 0),
                2 => (0.2, 0.8, 1),
                _ => (0.8, 0.2, 1),
            };
            feats.push(vec![cx + jx, cy + jy]);
            labels.push(l);
        }
        let d = Dataset::new("xor", feats, labels, 2).unwrap();
        let m =
            Mlp::train(&d, &MlpTrainParams { hidden: 6, epochs: 400, ..MlpTrainParams::default() });
        let acc = m.accuracy(&d);
        assert!(acc > 0.95, "xor accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let d = UciProfile::Dermatology.generate(3);
        let (train, _) = train_test_split(&d, 0.2, 3);
        let norm = Normalizer::fit(&train);
        let train = norm.apply(&train);
        let p = MlpTrainParams { epochs: 10, ..MlpTrainParams::default() };
        let a = Mlp::train(&train, &p);
        let b = Mlp::train(&train, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn reasonable_accuracy_on_dermatology() {
        let d = UciProfile::Dermatology.generate(7);
        let (train, test) = train_test_split(&d, 0.2, 7);
        let norm = Normalizer::fit(&train);
        let (train, test) = (norm.apply(&train), norm.apply(&test));
        let m = Mlp::train(&train, &MlpTrainParams::default());
        let acc = m.accuracy(&test);
        assert!(acc > 0.85, "dermatology MLP accuracy {acc}");
    }

    #[test]
    fn shapes_are_consistent() {
        let d = UciProfile::Cardio.generate(1);
        let (train, _) = train_test_split(&d, 0.2, 1);
        let train = Normalizer::fit(&train).apply(&train);
        let p = MlpTrainParams { hidden: 5, epochs: 3, ..MlpTrainParams::default() };
        let m = Mlp::train(&train, &p);
        assert_eq!(m.w1().len(), 5);
        assert_eq!(m.w1()[0].len(), 21);
        assert_eq!(m.w2().len(), 3);
        assert_eq!(m.w2()[0].len(), 5);
        assert_eq!(m.b1().len(), 5);
        assert_eq!(m.b2().len(), 3);
        assert_eq!(m.hidden(&[0.5; 21]).len(), 5);
    }
}
