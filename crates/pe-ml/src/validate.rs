//! K-fold cross-validation and model comparison.
//!
//! The paper reports a single 80/20 split; robust reproduction work wants a
//! variance estimate too. This module provides seeded k-fold CV over any
//! train-and-score closure, used by the extended experiments to attach
//! error bars to the accuracy comparisons.

use pe_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Result of a cross-validation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CvResult {
    /// Per-fold accuracies.
    pub fold_accuracies: Vec<f64>,
}

impl CvResult {
    /// Mean accuracy across folds.
    ///
    /// # Panics
    ///
    /// Panics if there are no folds.
    #[must_use]
    pub fn mean(&self) -> f64 {
        assert!(!self.fold_accuracies.is_empty(), "no folds");
        self.fold_accuracies.iter().sum::<f64>() / self.fold_accuracies.len() as f64
    }

    /// Sample standard deviation across folds (0 for a single fold).
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        let n = self.fold_accuracies.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean();
        let var =
            self.fold_accuracies.iter().map(|a| (a - mean).powi(2)).sum::<f64>() / (n - 1) as f64;
        var.sqrt()
    }
}

/// Runs k-fold cross-validation: `fit_score(train, test)` must return the
/// test accuracy of a model trained on `train`.
///
/// # Panics
///
/// Panics unless `2 <= k <= data.len()`.
pub fn k_fold<F>(data: &Dataset, k: usize, seed: u64, mut fit_score: F) -> CvResult
where
    F: FnMut(&Dataset, &Dataset) -> f64,
{
    assert!(k >= 2 && k <= data.len(), "k must be in 2..=len");
    let mut idx: Vec<usize> = (0..data.len()).collect();
    let mut rng = StdRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut fold_accuracies = Vec::with_capacity(k);
    for fold in 0..k {
        let test_idx: Vec<usize> =
            idx.iter().enumerate().filter(|(i, _)| i % k == fold).map(|(_, &v)| v).collect();
        let train_idx: Vec<usize> =
            idx.iter().enumerate().filter(|(i, _)| i % k != fold).map(|(_, &v)| v).collect();
        let mut train_sorted = train_idx;
        let mut test_sorted = test_idx;
        train_sorted.sort_unstable();
        test_sorted.sort_unstable();
        let train = data.subset(&train_sorted, "-cvtrain");
        let test = data.subset(&test_sorted, "-cvtest");
        fold_accuracies.push(fit_score(&train, &test));
    }
    CvResult { fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::SvmTrainParams;
    use crate::multiclass::{MulticlassScheme, SvmModel};
    use pe_data::{Normalizer, UciProfile};

    #[test]
    fn folds_partition_the_data() {
        let d = UciProfile::Dermatology.generate(3);
        let mut seen = 0usize;
        let r = k_fold(&d, 5, 1, |train, test| {
            assert_eq!(train.len() + test.len(), d.len());
            seen += test.len();
            1.0
        });
        assert_eq!(seen, d.len(), "every sample appears in exactly one test fold");
        assert_eq!(r.fold_accuracies.len(), 5);
        assert_eq!(r.mean(), 1.0);
        assert_eq!(r.std_dev(), 0.0);
    }

    #[test]
    fn cv_accuracy_is_stable_on_separable_data() {
        let d = UciProfile::Dermatology.generate(7);
        let r = k_fold(&d, 4, 9, |train, test| {
            let norm = Normalizer::fit(train);
            let (train, test) = (norm.apply(train), norm.apply(test));
            let p = SvmTrainParams { max_epochs: 40, ..SvmTrainParams::default() };
            SvmModel::train(&train, MulticlassScheme::OneVsRest, &p).accuracy(&test)
        });
        assert!(r.mean() > 0.85, "mean CV accuracy {:.3}", r.mean());
        assert!(r.std_dev() < 0.12, "fold variance too high: {:.3}", r.std_dev());
    }

    #[test]
    fn statistics_are_correct() {
        let r = CvResult { fold_accuracies: vec![0.8, 0.9, 1.0] };
        assert!((r.mean() - 0.9).abs() < 1e-12);
        assert!((r.std_dev() - 0.1).abs() < 1e-12);
        let single = CvResult { fold_accuracies: vec![0.5] };
        assert_eq!(single.std_dev(), 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn tiny_k_panics() {
        let d = UciProfile::Dermatology.generate(3);
        let _ = k_fold(&d, 1, 0, |_, _| 1.0);
    }
}
