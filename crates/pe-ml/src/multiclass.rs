//! Multi-class SVMs: One-vs-Rest (the paper) and One-vs-One (the baselines).

use crate::linear::{train_one_vs_one, train_one_vs_rest, LinearModel, SvmTrainParams};
use pe_data::metrics::accuracy;
use pe_data::Dataset;

/// Multi-class decomposition scheme.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MulticlassScheme {
    /// `n` classifiers, class `k` vs the rest; prediction is the argmax of
    /// decision values. Chosen by the paper because it needs the fewest
    /// stored coefficients and the simplest control.
    OneVsRest,
    /// `n(n-1)/2` pairwise classifiers with majority voting; used by the
    /// fully-parallel state of the art \[2\], \[3\].
    OneVsOne,
}

/// A trained multi-class linear SVM.
#[derive(Debug, Clone, PartialEq)]
pub struct SvmModel {
    scheme: MulticlassScheme,
    n_classes: usize,
    /// For OvR: classifier `k` is class `k` vs rest.
    /// For OvO: classifier for `pairs[k]`, positive = first class.
    models: Vec<LinearModel>,
    pairs: Vec<(usize, usize)>,
}

impl SvmModel {
    /// Trains on a dataset under the given scheme.
    ///
    /// # Panics
    ///
    /// Panics if the dataset has fewer than 2 classes or a class has no
    /// samples (for OvO pairs).
    #[must_use]
    pub fn train(data: &Dataset, scheme: MulticlassScheme, params: &SvmTrainParams) -> Self {
        let n = data.num_classes();
        assert!(n >= 2, "multi-class training needs at least 2 classes");
        match scheme {
            MulticlassScheme::OneVsRest => {
                let models = (0..n).map(|k| train_one_vs_rest(data, k, params)).collect();
                SvmModel { scheme, n_classes: n, models, pairs: Vec::new() }
            }
            MulticlassScheme::OneVsOne => {
                let mut models = Vec::new();
                let mut pairs = Vec::new();
                for a in 0..n {
                    for b in (a + 1)..n {
                        models.push(train_one_vs_one(data, a, b, params));
                        pairs.push((a, b));
                    }
                }
                SvmModel { scheme, n_classes: n, models, pairs }
            }
        }
    }

    /// Assembles a One-vs-Rest model from externally-trained binary
    /// classifiers (classifier `k` separates class `k` from the rest).
    /// Useful for importing coefficients trained in another framework and
    /// for randomized hardware testing.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two classifiers are given or their feature
    /// counts disagree.
    #[must_use]
    pub fn from_ovr(models: Vec<LinearModel>) -> Self {
        assert!(models.len() >= 2, "one-vs-rest needs at least two classes");
        let dim = models[0].weights().len();
        assert!(
            models.iter().all(|m| m.weights().len() == dim),
            "classifiers must share a feature count"
        );
        SvmModel {
            scheme: MulticlassScheme::OneVsRest,
            n_classes: models.len(),
            models,
            pairs: Vec::new(),
        }
    }

    /// The decomposition scheme.
    #[must_use]
    pub fn scheme(&self) -> MulticlassScheme {
        self.scheme
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// The underlying binary classifiers (the paper's "support vectors":
    /// for linear SVMs each binary classifier is one stored weight
    /// vector + bias).
    #[must_use]
    pub fn classifiers(&self) -> &[LinearModel] {
        &self.models
    }

    /// Class pairs for OvO (empty for OvR).
    #[must_use]
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Number of stored classifiers — the storage cost the paper's OvR
    /// choice minimizes (`n` vs `n(n-1)/2`).
    #[must_use]
    pub fn num_classifiers(&self) -> usize {
        self.models.len()
    }

    /// Predicts the class of one sample.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        match self.scheme {
            MulticlassScheme::OneVsRest => {
                let mut best = 0usize;
                let mut best_score = f64::NEG_INFINITY;
                for (k, m) in self.models.iter().enumerate() {
                    let s = m.decision(x);
                    if s > best_score {
                        best_score = s;
                        best = k;
                    }
                }
                best
            }
            MulticlassScheme::OneVsOne => {
                let mut votes = vec![0usize; self.n_classes];
                for (m, &(a, b)) in self.models.iter().zip(&self.pairs) {
                    if m.decision(x) > 0.0 {
                        votes[a] += 1;
                    } else {
                        votes[b] += 1;
                    }
                }
                // Tie resolves to the lower class index, matching the
                // deterministic hardware voter.
                let mut best = 0usize;
                for (k, &v) in votes.iter().enumerate() {
                    if v > votes[best] {
                        best = k;
                    }
                }
                best
            }
        }
    }

    /// Predictions for every sample of a dataset.
    #[must_use]
    pub fn predict_all(&self, data: &Dataset) -> Vec<usize> {
        data.features().iter().map(|x| self.predict(x)).collect()
    }

    /// Test accuracy on a dataset.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        accuracy(&self.predict_all(data), data.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pe_data::{train_test_split, Normalizer, UciProfile};

    fn three_blobs() -> Dataset {
        let mut feats = Vec::new();
        let mut labels = Vec::new();
        let centers = [(0.15, 0.2), (0.85, 0.2), (0.5, 0.85)];
        for (c, &(cx, cy)) in centers.iter().enumerate() {
            for i in 0..20 {
                let dx = ((i * 7) % 10) as f64 * 0.01;
                let dy = ((i * 3) % 10) as f64 * 0.01;
                feats.push(vec![cx + dx, cy + dy]);
                labels.push(c);
            }
        }
        Dataset::new("blobs", feats, labels, 3).unwrap()
    }

    #[test]
    fn ovr_classifies_blobs() {
        let d = three_blobs();
        let m = SvmModel::train(&d, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        assert_eq!(m.num_classifiers(), 3);
        assert!(m.accuracy(&d) > 0.95);
    }

    #[test]
    fn ovo_classifies_blobs() {
        let d = three_blobs();
        let m = SvmModel::train(&d, MulticlassScheme::OneVsOne, &SvmTrainParams::default());
        assert_eq!(m.num_classifiers(), 3); // 3*2/2
        assert_eq!(m.pairs(), &[(0, 1), (0, 2), (1, 2)]);
        assert!(m.accuracy(&d) > 0.95);
    }

    #[test]
    fn ovo_needs_quadratically_more_classifiers() {
        let d = UciProfile::PenDigits.generate(11);
        let (train, _) = train_test_split(&d, 0.2, 1);
        let small = train.subset(&(0..600).collect::<Vec<_>>(), "-s");
        let p = SvmTrainParams { max_epochs: 15, ..SvmTrainParams::default() };
        let ovr = SvmModel::train(&small, MulticlassScheme::OneVsRest, &p);
        let ovo = SvmModel::train(&small, MulticlassScheme::OneVsOne, &p);
        assert_eq!(ovr.num_classifiers(), 10);
        assert_eq!(ovo.num_classifiers(), 45);
    }

    #[test]
    fn dermatology_reaches_high_accuracy() {
        let d = UciProfile::Dermatology.generate(7);
        let (train, test) = train_test_split(&d, 0.2, 7);
        let norm = Normalizer::fit(&train);
        let (train, test) = (norm.apply(&train), norm.apply(&test));
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        let acc = m.accuracy(&test);
        assert!(acc > 0.90, "dermatology OvR accuracy {acc}");
    }

    #[test]
    fn from_ovr_assembles_importable_models() {
        use crate::linear::LinearModel;
        let m = SvmModel::from_ovr(vec![
            LinearModel::new(vec![1.0, 0.0], -0.4),
            LinearModel::new(vec![-1.0, 0.0], 0.6),
            LinearModel::new(vec![0.0, 1.0], -0.5),
        ]);
        assert_eq!(m.num_classes(), 3);
        assert_eq!(m.scheme(), MulticlassScheme::OneVsRest);
        assert_eq!(m.predict(&[0.9, 0.1]), 0);
        assert_eq!(m.predict(&[0.1, 0.1]), 1);
        assert_eq!(m.predict(&[0.4, 0.99]), 2);
    }

    #[test]
    #[should_panic(expected = "share a feature count")]
    fn from_ovr_checks_dimensions() {
        use crate::linear::LinearModel;
        let _ = SvmModel::from_ovr(vec![
            LinearModel::new(vec![1.0], 0.0),
            LinearModel::new(vec![1.0, 2.0], 0.0),
        ]);
    }

    #[test]
    fn predictions_cover_all_classes_on_balanced_data() {
        let d = three_blobs();
        let m = SvmModel::train(&d, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        let preds = m.predict_all(&d);
        for c in 0..3 {
            assert!(preds.contains(&c), "class {c} never predicted");
        }
    }
}
