//! Post-training quantization and bit-exact integer inference.
//!
//! This module is the contract between training and hardware:
//!
//! * Inputs are unsigned `input_bits`-bit integers `x_q = round(x·(2^k−1))`
//!   for `x ∈ [0, 1]` (the paper's normalized inputs at low precision).
//! * All of a model's weights share one **global** power-of-two scale
//!   `2^-f` fitted to the largest weight magnitude at `weight_bits` — a
//!   per-classifier scale would break One-vs-Rest argmax comparability and
//!   would force per-classifier binary points into the storage MUX.
//! * Biases are quantized directly at the accumulator scale
//!   (`s_w · s_x`), so the integer score `Σ w_q·x_q + b_q` is a positive
//!   rescaling of the real score — argmax- and sign-preserving.
//!
//! [`QuantizedSvm::scores_int`] / [`QuantizedMlp::logits_int`] are the golden
//! references that generated netlists in `pe-core` are verified against,
//! sample by sample, bit by bit.

use crate::mlp::Mlp;
use crate::multiclass::{MulticlassScheme, SvmModel};
use pe_data::metrics::accuracy;
use pe_data::Dataset;
use pe_fixed::bits as fxbits;
use pe_fixed::QuantScheme;

/// One quantized linear classifier: integer weights plus an integer bias at
/// accumulator scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedLinear {
    /// Weights on the global `2^-f` grid.
    pub weights_q: Vec<i64>,
    /// Bias at accumulator scale (`s_w · s_x`).
    pub bias_q: i64,
}

impl QuantizedLinear {
    /// Integer decision value `Σ w_q·x_q + b_q`.
    ///
    /// # Panics
    ///
    /// Panics if `x_q` has the wrong dimensionality.
    #[must_use]
    pub fn score_int(&self, x_q: &[i64]) -> i64 {
        assert_eq!(x_q.len(), self.weights_q.len(), "feature count mismatch");
        self.weights_q.iter().zip(x_q).map(|(w, x)| w * x).sum::<i64>() + self.bias_q
    }
}

/// A quantized multi-class SVM with integer-exact inference.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedSvm {
    scheme: MulticlassScheme,
    n_classes: usize,
    pairs: Vec<(usize, usize)>,
    classifiers: Vec<QuantizedLinear>,
    input_bits: u32,
    weight_bits: u32,
    weight_frac: i32,
}

impl QuantizedSvm {
    /// Quantizes a trained [`SvmModel`].
    ///
    /// # Panics
    ///
    /// Panics if `input_bits` or `weight_bits` are outside `1..=16`.
    #[must_use]
    pub fn quantize(model: &SvmModel, input_bits: u32, weight_bits: u32) -> Self {
        assert!((1..=16).contains(&input_bits), "input bits out of range");
        assert!((1..=16).contains(&weight_bits), "weight bits out of range");
        let all_weights: Vec<f64> =
            model.classifiers().iter().flat_map(|m| m.weights().iter().copied()).collect();
        let ws = QuantScheme::fit_signed(&all_weights, weight_bits)
            .expect("a trained model has weights");
        let levels = f64::from((1u32 << input_bits) - 1);
        // bias_q = b / (s_w · s_x) = b · 2^f · (2^k − 1)
        let bias_scale = (2.0f64).powi(ws.frac()) * levels;
        let classifiers = model
            .classifiers()
            .iter()
            .map(|m| QuantizedLinear {
                weights_q: m.weights().iter().map(|&w| ws.quantize(w)).collect(),
                bias_q: (m.bias() * bias_scale).round() as i64,
            })
            .collect();
        QuantizedSvm {
            scheme: model.scheme(),
            n_classes: model.num_classes(),
            pairs: model.pairs().to_vec(),
            classifiers,
            input_bits,
            weight_bits,
            weight_frac: ws.frac(),
        }
    }

    /// The decomposition scheme.
    #[must_use]
    pub fn scheme(&self) -> MulticlassScheme {
        self.scheme
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// The quantized binary classifiers.
    #[must_use]
    pub fn classifiers(&self) -> &[QuantizedLinear] {
        &self.classifiers
    }

    /// OvO class pairs (empty for OvR).
    #[must_use]
    pub fn pairs(&self) -> &[(usize, usize)] {
        &self.pairs
    }

    /// Input precision in bits.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// Weight precision in bits.
    #[must_use]
    pub fn weight_bits(&self) -> u32 {
        self.weight_bits
    }

    /// The global binary-point position of the weight grid (`scale 2^-f`).
    #[must_use]
    pub fn weight_frac(&self) -> i32 {
        self.weight_frac
    }

    /// Number of input features.
    #[must_use]
    pub fn num_features(&self) -> usize {
        self.classifiers[0].weights_q.len()
    }

    /// Quantizes a normalized (`[0,1]`) sample to the input grid.
    #[must_use]
    pub fn quantize_input(&self, x: &[f64]) -> Vec<i64> {
        let levels = f64::from((1u32 << self.input_bits) - 1);
        x.iter().map(|&v| (v.clamp(0.0, 1.0) * levels).round() as i64).collect()
    }

    /// Integer scores of all classifiers for a quantized sample.
    #[must_use]
    pub fn scores_int(&self, x_q: &[i64]) -> Vec<i64> {
        self.classifiers.iter().map(|c| c.score_int(x_q)).collect()
    }

    /// Integer-exact class prediction (OvR argmax with ties to the lower
    /// index; OvO majority vote with ties to the lower class).
    #[must_use]
    pub fn predict_int(&self, x_q: &[i64]) -> usize {
        let scores = self.scores_int(x_q);
        match self.scheme {
            MulticlassScheme::OneVsRest => {
                let mut best = 0usize;
                for (k, &s) in scores.iter().enumerate() {
                    if s > scores[best] {
                        best = k;
                    }
                }
                best
            }
            MulticlassScheme::OneVsOne => {
                let mut votes = vec![0usize; self.n_classes];
                for (&s, &(a, b)) in scores.iter().zip(&self.pairs) {
                    if s > 0 {
                        votes[a] += 1;
                    } else {
                        votes[b] += 1;
                    }
                }
                let mut best = 0usize;
                for (k, &v) in votes.iter().enumerate() {
                    if v > votes[best] {
                        best = k;
                    }
                }
                best
            }
        }
    }

    /// Prediction from a normalized float sample (quantize, then integer
    /// inference).
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_int(&self.quantize_input(x))
    }

    /// Test accuracy under integer inference.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let preds: Vec<usize> = data.features().iter().map(|x| self.predict(x)).collect();
        accuracy(&preds, data.labels())
    }

    /// Coefficient approximation in the style of baseline \[3\]: every weight
    /// keeps only its `max_terms` most significant CSD digits (and biases
    /// are truncated to the same relative resolution). Fewer CSD terms mean
    /// cheaper bespoke multipliers at some accuracy cost.
    #[must_use]
    pub fn approximate_csd(&self, max_terms: usize) -> QuantizedSvm {
        let approx = |v: i64| -> i64 {
            let mut terms = fxbits::csd(v);
            // Keep the largest-magnitude digits.
            terms.sort_by_key(|t| std::cmp::Reverse(t.0));
            terms.truncate(max_terms);
            fxbits::csd_value(&terms)
        };
        QuantizedSvm {
            scheme: self.scheme,
            n_classes: self.n_classes,
            pairs: self.pairs.clone(),
            classifiers: self
                .classifiers
                .iter()
                .map(|c| QuantizedLinear {
                    weights_q: c.weights_q.iter().map(|&w| approx(w)).collect(),
                    bias_q: c.bias_q,
                })
                .collect(),
            input_bits: self.input_bits,
            weight_bits: self.weight_bits,
            weight_frac: self.weight_frac,
        }
    }
}

/// A quantized MLP with integer-exact inference (baseline \[4\]).
///
/// Hidden activations are re-quantized by an arithmetic right shift (free in
/// hardware) calibrated on training data so the layer-2 inputs fit
/// `hidden_bits` unsigned bits.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuantizedMlp {
    w1_q: Vec<Vec<i64>>,
    b1_q: Vec<i64>,
    w2_q: Vec<Vec<i64>>,
    b2_q: Vec<i64>,
    input_bits: u32,
    weight_bits: u32,
    hidden_bits: u32,
    hidden_shift: u32,
    n_classes: usize,
}

impl QuantizedMlp {
    /// Quantizes a trained [`Mlp`], calibrating the hidden-layer shift on
    /// `calibration` (normalized training data).
    ///
    /// # Panics
    ///
    /// Panics if precisions are outside `1..=16` or the calibration set is
    /// empty.
    #[must_use]
    pub fn quantize(
        mlp: &Mlp,
        calibration: &Dataset,
        input_bits: u32,
        weight_bits: u32,
        hidden_bits: u32,
    ) -> Self {
        assert!((1..=16).contains(&input_bits));
        assert!((1..=16).contains(&weight_bits));
        assert!((1..=16).contains(&hidden_bits));
        assert!(!calibration.is_empty(), "calibration data required");
        let flat1: Vec<f64> = mlp.w1().iter().flatten().copied().collect();
        let flat2: Vec<f64> = mlp.w2().iter().flatten().copied().collect();
        let ws1 = QuantScheme::fit_signed(&flat1, weight_bits).expect("non-empty weights");
        let ws2 = QuantScheme::fit_signed(&flat2, weight_bits).expect("non-empty weights");
        let levels = f64::from((1u32 << input_bits) - 1);
        let b1_scale = (2.0f64).powi(ws1.frac()) * levels;
        let w1_q: Vec<Vec<i64>> =
            mlp.w1().iter().map(|row| row.iter().map(|&w| ws1.quantize(w)).collect()).collect();
        let b1_q: Vec<i64> = mlp.b1().iter().map(|&b| (b * b1_scale).round() as i64).collect();
        // Calibrate the hidden shift: find the max integer pre-activation.
        let mut max_acc = 0i64;
        for x in calibration.features() {
            let x_q: Vec<i64> =
                x.iter().map(|&v| (v.clamp(0.0, 1.0) * levels).round() as i64).collect();
            for (row, &b) in w1_q.iter().zip(&b1_q) {
                let acc: i64 = row.iter().zip(&x_q).map(|(w, x)| w * x).sum::<i64>() + b;
                max_acc = max_acc.max(acc);
            }
        }
        let max_width = fxbits::unsigned_width(max_acc.max(1));
        let hidden_shift = max_width.saturating_sub(hidden_bits);
        // Layer-2 bias at layer-2 accumulator scale: s_w2 · s_h where
        // s_h = s_w1 · s_x · 2^shift.
        let s_h = (2.0f64).powi(-ws1.frac()) / levels * (2.0f64).powi(hidden_shift as i32);
        let b2_scale = (2.0f64).powi(ws2.frac()) / s_h;
        let w2_q: Vec<Vec<i64>> =
            mlp.w2().iter().map(|row| row.iter().map(|&w| ws2.quantize(w)).collect()).collect();
        let b2_q: Vec<i64> = mlp.b2().iter().map(|&b| (b * b2_scale).round() as i64).collect();
        QuantizedMlp {
            w1_q,
            b1_q,
            w2_q,
            b2_q,
            input_bits,
            weight_bits,
            hidden_bits,
            hidden_shift,
            n_classes: mlp.w2().len(),
        }
    }

    /// Hidden-layer quantized weights.
    #[must_use]
    pub fn w1_q(&self) -> &[Vec<i64>] {
        &self.w1_q
    }

    /// Hidden-layer quantized biases (accumulator scale).
    #[must_use]
    pub fn b1_q(&self) -> &[i64] {
        &self.b1_q
    }

    /// Output-layer quantized weights.
    #[must_use]
    pub fn w2_q(&self) -> &[Vec<i64>] {
        &self.w2_q
    }

    /// Output-layer quantized biases (accumulator scale).
    #[must_use]
    pub fn b2_q(&self) -> &[i64] {
        &self.b2_q
    }

    /// Input precision in bits.
    #[must_use]
    pub fn input_bits(&self) -> u32 {
        self.input_bits
    }

    /// The calibrated hidden re-quantization shift.
    #[must_use]
    pub fn hidden_shift(&self) -> u32 {
        self.hidden_shift
    }

    /// Hidden activation precision in bits.
    #[must_use]
    pub fn hidden_bits(&self) -> u32 {
        self.hidden_bits
    }

    /// Number of classes.
    #[must_use]
    pub fn num_classes(&self) -> usize {
        self.n_classes
    }

    /// Quantizes a normalized sample to the input grid.
    #[must_use]
    pub fn quantize_input(&self, x: &[f64]) -> Vec<i64> {
        let levels = f64::from((1u32 << self.input_bits) - 1);
        x.iter().map(|&v| (v.clamp(0.0, 1.0) * levels).round() as i64).collect()
    }

    /// Integer hidden activations after ReLU, shift and saturation.
    #[must_use]
    pub fn hidden_int(&self, x_q: &[i64]) -> Vec<i64> {
        let cap = i64::from((1u32 << self.hidden_bits) - 1);
        self.w1_q
            .iter()
            .zip(&self.b1_q)
            .map(|(row, &b)| {
                let acc: i64 = row.iter().zip(x_q).map(|(w, x)| w * x).sum::<i64>() + b;
                (acc.max(0) >> self.hidden_shift).min(cap)
            })
            .collect()
    }

    /// Integer logits.
    #[must_use]
    pub fn logits_int(&self, x_q: &[i64]) -> Vec<i64> {
        let h = self.hidden_int(x_q);
        self.w2_q
            .iter()
            .zip(&self.b2_q)
            .map(|(row, &b)| row.iter().zip(&h).map(|(w, x)| w * x).sum::<i64>() + b)
            .collect()
    }

    /// Integer-exact prediction (argmax, ties to the lower index).
    #[must_use]
    pub fn predict_int(&self, x_q: &[i64]) -> usize {
        let logits = self.logits_int(x_q);
        let mut best = 0usize;
        for (k, &s) in logits.iter().enumerate() {
            if s > logits[best] {
                best = k;
            }
        }
        best
    }

    /// Prediction from a normalized float sample.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> usize {
        self.predict_int(&self.quantize_input(x))
    }

    /// Test accuracy under integer inference.
    #[must_use]
    pub fn accuracy(&self, data: &Dataset) -> f64 {
        let preds: Vec<usize> = data.features().iter().map(|x| self.predict(x)).collect();
        accuracy(&preds, data.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::SvmTrainParams;
    use crate::mlp::MlpTrainParams;
    use pe_data::{train_test_split, Normalizer, UciProfile};

    fn derm_split() -> (Dataset, Dataset) {
        let d = UciProfile::Dermatology.generate(7);
        let (train, test) = train_test_split(&d, 0.2, 7);
        let norm = Normalizer::fit(&train);
        (norm.apply(&train), norm.apply(&test))
    }

    #[test]
    fn quantized_svm_tracks_float_accuracy() {
        let (train, test) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        let float_acc = m.accuracy(&test);
        let q = QuantizedSvm::quantize(&m, 4, 8);
        let q_acc = q.accuracy(&test);
        assert!(
            q_acc >= float_acc - 0.05,
            "8-bit quantization lost too much: {float_acc} -> {q_acc}"
        );
    }

    #[test]
    fn narrower_weights_degrade_gracefully() {
        let (train, test) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        let a8 = QuantizedSvm::quantize(&m, 4, 8).accuracy(&test);
        let a2 = QuantizedSvm::quantize(&m, 4, 2).accuracy(&test);
        assert!(a8 >= a2, "8-bit ({a8}) must beat 2-bit ({a2})");
    }

    #[test]
    fn integer_scores_match_scaled_float_scores() {
        let (train, _) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        let q = QuantizedSvm::quantize(&m, 8, 12);
        // With generous precision, the integer argmax must equal the float
        // argmax on nearly all samples.
        let mut agree = 0usize;
        for x in train.features().iter().take(120) {
            if q.predict(x) == m.predict(x) {
                agree += 1;
            }
        }
        assert!(agree >= 114, "only {agree}/120 agreements at high precision");
    }

    #[test]
    fn input_quantization_grid() {
        let (train, _) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        let q = QuantizedSvm::quantize(&m, 4, 6);
        let xq = q.quantize_input(&[0.0, 1.0, 0.5, 2.0, -1.0]);
        assert_eq!(xq, vec![0, 15, 8, 15, 0]);
        assert_eq!(q.input_bits(), 4);
        assert_eq!(q.weight_bits(), 6);
    }

    #[test]
    fn weights_fit_declared_precision() {
        let (train, _) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        for bits in [3u32, 5, 8] {
            let q = QuantizedSvm::quantize(&m, 4, bits);
            let limit = 1i64 << (bits - 1);
            for c in q.classifiers() {
                for &w in &c.weights_q {
                    assert!(w >= -limit && w < limit, "{w} exceeds {bits} bits");
                }
            }
        }
    }

    #[test]
    fn csd_approximation_reduces_terms() {
        let (train, test) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsOne, &SvmTrainParams::default());
        let q = QuantizedSvm::quantize(&m, 8, 8);
        let a = q.approximate_csd(2);
        for (c, ca) in q.classifiers().iter().zip(a.classifiers()) {
            for (&w, &wa) in c.weights_q.iter().zip(&ca.weights_q) {
                assert!(fxbits::csd_cost(wa) <= 2, "approximated weight {wa} from {w}");
            }
        }
        // Accuracy drops a little but not catastrophically.
        let acc_full = q.accuracy(&test);
        let acc_approx = a.accuracy(&test);
        assert!(acc_approx >= acc_full - 0.25, "{acc_full} -> {acc_approx}");
    }

    #[test]
    fn quantized_mlp_matches_float_reasonably() {
        let (train, test) = derm_split();
        let mlp = Mlp::train(&train, &MlpTrainParams::default());
        let q = QuantizedMlp::quantize(&mlp, &train, 4, 6, 8);
        let fa = mlp.accuracy(&test);
        let qa = q.accuracy(&test);
        assert!(qa >= fa - 0.12, "MLP quantization lost too much: {fa} -> {qa}");
        assert_eq!(q.num_classes(), 6);
    }

    #[test]
    fn mlp_hidden_respects_bits() {
        let (train, _) = derm_split();
        let mlp = Mlp::train(&train, &MlpTrainParams { epochs: 20, ..MlpTrainParams::default() });
        let q = QuantizedMlp::quantize(&mlp, &train, 4, 6, 5);
        let cap = (1i64 << 5) - 1;
        for x in train.features().iter().take(50) {
            let h = q.hidden_int(&q.quantize_input(x));
            for &v in &h {
                assert!((0..=cap).contains(&v), "hidden activation {v} out of range");
            }
        }
    }

    #[test]
    fn ovo_quantized_predicts_by_votes() {
        let (train, test) = derm_split();
        let m = SvmModel::train(&train, MulticlassScheme::OneVsOne, &SvmTrainParams::default());
        let q = QuantizedSvm::quantize(&m, 6, 8);
        assert_eq!(q.pairs().len(), 15); // 6*5/2
        let acc = q.accuracy(&test);
        assert!(acc > 0.85, "OvO quantized accuracy {acc}");
    }
}
