//! Binary linear SVM training by dual coordinate descent.
//!
//! Implements the liblinear algorithm for L2-regularized L1-loss (hinge) SVM
//! in the dual: one coordinate (one training sample's dual variable) is
//! optimized at a time with a closed-form clipped Newton step, maintaining
//! the primal weight vector incrementally. The bias is handled by feature
//! augmentation (a constant-1 feature), the standard liblinear `-B 1` trick.

use pe_data::Dataset;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A trained linear decision function `w·x + b`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    weights: Vec<f64>,
    bias: f64,
}

impl LinearModel {
    /// Wraps explicit parameters.
    #[must_use]
    pub fn new(weights: Vec<f64>, bias: f64) -> Self {
        LinearModel { weights, bias }
    }

    /// The feature weights.
    #[must_use]
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// The bias term.
    #[must_use]
    pub fn bias(&self) -> f64 {
        self.bias
    }

    /// The decision value `w·x + b`.
    ///
    /// # Panics
    ///
    /// Panics if `x` has the wrong dimensionality.
    #[must_use]
    pub fn decision(&self, x: &[f64]) -> f64 {
        assert_eq!(x.len(), self.weights.len(), "feature count mismatch");
        self.weights.iter().zip(x).map(|(w, v)| w * v).sum::<f64>() + self.bias
    }
}

/// Hyper-parameters of dual-coordinate-descent SVM training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SvmTrainParams {
    /// Regularization parameter C (upper bound on dual variables).
    pub c: f64,
    /// Maximum epochs over the training set.
    pub max_epochs: usize,
    /// Stop when the epoch's largest projected gradient falls below this.
    pub tolerance: f64,
    /// Shuffling seed (training is deterministic given the seed).
    pub seed: u64,
    /// Rebalance C between the classes: positive samples get
    /// `C * (n_neg / n_pos)` capped at `10 * C`. Essential for One-vs-Rest
    /// on imbalanced data such as Cardio.
    pub balance_classes: bool,
}

impl Default for SvmTrainParams {
    fn default() -> Self {
        SvmTrainParams {
            c: 1.0,
            max_epochs: 120,
            tolerance: 1e-4,
            seed: 0x5eed,
            balance_classes: true,
        }
    }
}

/// Trains a binary SVM on `±1` labels.
///
/// # Panics
///
/// Panics if the inputs are empty, lengths mismatch, or a label is not `±1`.
#[must_use]
pub fn train_binary_svm(
    features: &[Vec<f64>],
    labels: &[f64],
    params: &SvmTrainParams,
) -> LinearModel {
    assert!(!features.is_empty(), "no training samples");
    assert_eq!(features.len(), labels.len(), "sample/label count mismatch");
    assert!(labels.iter().all(|&y| y == 1.0 || y == -1.0), "labels must be ±1");
    let n = features.len();
    let dim = features[0].len();
    // Augmented representation: x' = [x, 1] so the bias is learned as the
    // last weight.
    let aug = dim + 1;
    let q_diag: Vec<f64> =
        features.iter().map(|x| x.iter().map(|v| v * v).sum::<f64>() + 1.0).collect();
    let n_pos = labels.iter().filter(|&&y| y > 0.0).count().max(1);
    let n_neg = (n - n_pos).max(1);
    let c_pos = if params.balance_classes {
        (params.c * n_neg as f64 / n_pos as f64).min(10.0 * params.c)
    } else {
        params.c
    };
    let c_of = |y: f64| if y > 0.0 { c_pos } else { params.c };

    let mut w = vec![0.0f64; aug];
    let mut alpha = vec![0.0f64; n];
    let mut order: Vec<usize> = (0..n).collect();
    let mut rng = StdRng::seed_from_u64(params.seed);
    for _epoch in 0..params.max_epochs {
        order.shuffle(&mut rng);
        let mut max_pg = 0.0f64;
        for &i in &order {
            let xi = &features[i];
            let yi = labels[i];
            let ci = c_of(yi);
            // G = y_i * (w·x'_i) - 1
            let wx = xi.iter().zip(&w).map(|(v, wj)| v * wj).sum::<f64>() + w[aug - 1];
            let g = yi * wx - 1.0;
            let pg = if alpha[i] <= 0.0 {
                g.min(0.0)
            } else if alpha[i] >= ci {
                g.max(0.0)
            } else {
                g
            };
            if pg.abs() > 1e-12 {
                max_pg = max_pg.max(pg.abs());
                let old = alpha[i];
                let new = (old - g / q_diag[i]).clamp(0.0, ci);
                let delta = (new - old) * yi;
                if delta != 0.0 {
                    for (wj, v) in w.iter_mut().zip(xi) {
                        *wj += delta * v;
                    }
                    w[aug - 1] += delta;
                    alpha[i] = new;
                }
            }
        }
        if max_pg < params.tolerance {
            break;
        }
    }
    let bias = w.pop().expect("augmented weight vector is non-empty");
    LinearModel { weights: w, bias }
}

/// Trains a one-vs-rest binary problem from a multi-class dataset:
/// `positive_class` maps to `+1`, everything else to `-1`.
///
/// # Panics
///
/// Propagates [`train_binary_svm`] panics; also panics if `positive_class`
/// is out of range.
#[must_use]
pub fn train_one_vs_rest(
    data: &Dataset,
    positive_class: usize,
    params: &SvmTrainParams,
) -> LinearModel {
    assert!(positive_class < data.num_classes(), "class out of range");
    let labels: Vec<f64> =
        data.labels().iter().map(|&l| if l == positive_class { 1.0 } else { -1.0 }).collect();
    train_binary_svm(data.features(), &labels, params)
}

/// Trains a one-vs-one binary problem restricted to samples of the two
/// classes: `class_a` maps to `+1`, `class_b` to `-1`.
///
/// # Panics
///
/// Panics if the classes are equal, out of range, or either has no samples.
#[must_use]
pub fn train_one_vs_one(
    data: &Dataset,
    class_a: usize,
    class_b: usize,
    params: &SvmTrainParams,
) -> LinearModel {
    assert!(class_a != class_b, "distinct classes required");
    assert!(class_a < data.num_classes() && class_b < data.num_classes());
    let mut feats = Vec::new();
    let mut labels = Vec::new();
    for (row, &l) in data.features().iter().zip(data.labels()) {
        if l == class_a {
            feats.push(row.clone());
            labels.push(1.0);
        } else if l == class_b {
            feats.push(row.clone());
            labels.push(-1.0);
        }
    }
    assert!(
        labels.iter().any(|&y| y > 0.0) && labels.iter().any(|&y| y < 0.0),
        "both classes need at least one sample"
    );
    train_binary_svm(&feats, &labels, params)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn linearly_separable(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // Class +1 around (0.8, 0.8), class -1 around (0.2, 0.2).
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f64) / (n as f64) * 0.1;
            if i % 2 == 0 {
                x.push(vec![0.8 + t, 0.8 - t]);
                y.push(1.0);
            } else {
                x.push(vec![0.2 - t, 0.2 + t]);
                y.push(-1.0);
            }
        }
        (x, y)
    }

    #[test]
    fn separable_data_is_fit_perfectly() {
        let (x, y) = linearly_separable(40);
        let m = train_binary_svm(&x, &y, &SvmTrainParams::default());
        for (xi, &yi) in x.iter().zip(&y) {
            assert!(m.decision(xi) * yi > 0.0, "misclassified {xi:?}");
        }
    }

    #[test]
    fn margin_is_respected() {
        // With hinge loss on separable data, support vectors sit near
        // |decision| = 1.
        let (x, y) = linearly_separable(40);
        let m = train_binary_svm(&x, &y, &SvmTrainParams::default());
        let min_margin =
            x.iter().zip(&y).map(|(xi, &yi)| m.decision(xi) * yi).fold(f64::INFINITY, f64::min);
        assert!(min_margin > 0.5, "margin {min_margin} too small");
    }

    #[test]
    fn training_is_deterministic() {
        let (x, y) = linearly_separable(30);
        let p = SvmTrainParams::default();
        let a = train_binary_svm(&x, &y, &p);
        let b = train_binary_svm(&x, &y, &p);
        assert_eq!(a, b);
    }

    #[test]
    fn seeds_change_nothing_substantive() {
        let (x, y) = linearly_separable(30);
        let mut p = SvmTrainParams::default();
        let a = train_binary_svm(&x, &y, &p);
        p.seed = 999;
        let b = train_binary_svm(&x, &y, &p);
        // Different shuffle order converges to (nearly) the same optimum.
        for (wa, wb) in a.weights().iter().zip(b.weights()) {
            assert!((wa - wb).abs() < 0.1, "{wa} vs {wb}");
        }
    }

    #[test]
    fn class_balancing_helps_minority() {
        // 90/10 imbalance; without balancing the minority class is often
        // swallowed.
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..100 {
            if i < 90 {
                x.push(vec![0.4 + 0.001 * (i as f64), 0.5]);
                y.push(-1.0);
            } else {
                x.push(vec![0.62 + 0.001 * (i as f64), 0.5]);
                y.push(1.0);
            }
        }
        let balanced = train_binary_svm(
            &x,
            &y,
            &SvmTrainParams { balance_classes: true, ..SvmTrainParams::default() },
        );
        let pos_correct = x
            .iter()
            .zip(&y)
            .filter(|(_, &yi)| yi > 0.0)
            .filter(|(xi, _)| balanced.decision(xi) > 0.0)
            .count();
        assert_eq!(pos_correct, 10, "balanced training must recover the minority class");
    }

    #[test]
    fn ovr_and_ovo_helpers() {
        let data = Dataset::new(
            "t",
            vec![
                vec![0.1, 0.1],
                vec![0.15, 0.2],
                vec![0.9, 0.1],
                vec![0.8, 0.2],
                vec![0.5, 0.9],
                vec![0.45, 0.85],
            ],
            vec![0, 0, 1, 1, 2, 2],
            3,
        )
        .unwrap();
        let p = SvmTrainParams::default();
        let m0 = train_one_vs_rest(&data, 0, &p);
        assert!(m0.decision(&[0.1, 0.1]) > 0.0);
        assert!(m0.decision(&[0.9, 0.1]) < 0.0);
        let m01 = train_one_vs_one(&data, 0, 1, &p);
        assert!(m01.decision(&[0.1, 0.15]) > 0.0);
        assert!(m01.decision(&[0.85, 0.15]) < 0.0);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn bad_labels_panic() {
        let _ = train_binary_svm(&[vec![1.0]], &[2.0], &SvmTrainParams::default());
    }

    #[test]
    #[should_panic(expected = "feature count")]
    fn decision_checks_dimensions() {
        let m = LinearModel::new(vec![1.0, 2.0], 0.0);
        let _ = m.decision(&[1.0]);
    }
}
