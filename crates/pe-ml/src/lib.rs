//! Machine-learning substrate: linear SVMs, multi-class wrappers, a small
//! MLP, and post-training quantization with integer-exact inference.
//!
//! This crate replaces the scikit-learn side of the paper's flow:
//!
//! * [`linear`] — binary L1-loss linear SVMs trained by dual coordinate
//!   descent (the liblinear algorithm), deterministic under a seed.
//! * [`multiclass`] — One-vs-Rest (the paper's choice: `n` classifiers) and
//!   One-vs-One (the state of the art's choice: `n(n-1)/2` classifiers).
//! * [`mlp`] — a small one-hidden-layer MLP with ReLU, the baseline of
//!   Armeniakos et al. (TC'23) \[4\].
//! * [`quantized`] — post-training quantization to narrow two's-complement
//!   integers with a **global power-of-two weight scale** (so that One-vs-Rest
//!   argmax comparisons remain meaningful across classifiers) and bit-exact
//!   integer inference. The integer models here are the golden references the
//!   generated circuits in `pe-core` are verified against, sample by sample.
//!
//! # Example
//!
//! ```
//! use pe_data::UciProfile;
//! use pe_data::{train_test_split, Normalizer};
//! use pe_ml::multiclass::{MulticlassScheme, SvmModel};
//! use pe_ml::linear::SvmTrainParams;
//!
//! let data = UciProfile::Dermatology.generate(7);
//! let (train, test) = train_test_split(&data, 0.2, 7);
//! let norm = Normalizer::fit(&train);
//! let (train, test) = (norm.apply(&train), norm.apply(&test));
//! let model = SvmModel::train(&train, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
//! let acc = model.accuracy(&test);
//! assert!(acc > 0.8);
//! ```

pub mod linear;
pub mod mlp;
pub mod multiclass;
pub mod pegasos;
pub mod quantized;
pub mod validate;

pub use linear::{LinearModel, SvmTrainParams};
pub use mlp::{Mlp, MlpTrainParams};
pub use multiclass::{MulticlassScheme, SvmModel};
pub use quantized::{QuantizedMlp, QuantizedSvm};
