//! Pegasos: primal sub-gradient SVM training.
//!
//! An independent second solver for the same objective the dual coordinate
//! descent in [`crate::linear`] optimizes (L2-regularized hinge loss).
//! Having two structurally different optimizers agree on decision boundaries
//! is the training-side analog of this repository's dual-netlist hardware
//! verification — and Pegasos handles streaming settings where the dual's
//! per-sample state is unavailable.
//!
//! Reference: Shalev-Shwartz, Singer, Srebro. "Pegasos: Primal Estimated
//! sub-GrAdient SOlver for SVM", ICML 2007.

use crate::linear::LinearModel;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Pegasos hyper-parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PegasosParams {
    /// Regularization strength λ (≈ 1/(C·n) against the dual formulation).
    pub lambda: f64,
    /// Number of stochastic iterations.
    pub iterations: usize,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for PegasosParams {
    fn default() -> Self {
        PegasosParams { lambda: 1e-3, iterations: 60_000, seed: 0x9e6a }
    }
}

/// Trains a binary SVM on `±1` labels with the Pegasos algorithm.
///
/// The bias is learned through feature augmentation, like the dual solver,
/// so the two produce directly comparable [`LinearModel`]s.
///
/// # Panics
///
/// Panics if inputs are empty, lengths mismatch, a label is not `±1`, or
/// the hyper-parameters are non-positive.
#[must_use]
pub fn train_pegasos(features: &[Vec<f64>], labels: &[f64], params: &PegasosParams) -> LinearModel {
    assert!(!features.is_empty(), "no training samples");
    assert_eq!(features.len(), labels.len(), "sample/label count mismatch");
    assert!(labels.iter().all(|&y| y == 1.0 || y == -1.0), "labels must be ±1");
    assert!(params.lambda > 0.0 && params.iterations > 0, "invalid hyper-parameters");
    let n = features.len();
    let dim = features[0].len();
    let mut w = vec![0.0f64; dim + 1]; // last = bias via augmentation
    let mut rng = StdRng::seed_from_u64(params.seed);
    for t in 1..=params.iterations {
        let i = rng.gen_range(0..n);
        let xi = &features[i];
        let yi = labels[i];
        let eta = 1.0 / (params.lambda * t as f64);
        let wx: f64 = xi.iter().zip(&w).map(|(v, wj)| v * wj).sum::<f64>() + w[dim];
        // Sub-gradient step: shrink, then (on margin violation) pull.
        let shrink = 1.0 - eta * params.lambda;
        for wj in &mut w {
            *wj *= shrink;
        }
        if yi * wx < 1.0 {
            for (wj, v) in w.iter_mut().zip(xi) {
                *wj += eta * yi * v;
            }
            w[dim] += eta * yi;
        }
        // Optional projection onto the 1/sqrt(lambda) ball (keeps the
        // classic convergence guarantee).
        let norm = w.iter().map(|v| v * v).sum::<f64>().sqrt();
        let radius = 1.0 / params.lambda.sqrt();
        if norm > radius {
            let scale = radius / norm;
            for wj in &mut w {
                *wj *= scale;
            }
        }
    }
    let bias = w.pop().expect("augmented vector non-empty");
    LinearModel::new(w, bias)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::{train_binary_svm, SvmTrainParams};

    fn separable(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut x = Vec::new();
        let mut y = Vec::new();
        for i in 0..n {
            let t = (i as f64) / (n as f64) * 0.1;
            if i % 2 == 0 {
                x.push(vec![0.85 + t, 0.8 - t]);
                y.push(1.0);
            } else {
                x.push(vec![0.2 - t, 0.15 + t]);
                y.push(-1.0);
            }
        }
        (x, y)
    }

    #[test]
    fn pegasos_separates_separable_data() {
        let (x, y) = separable(60);
        let m = train_pegasos(&x, &y, &PegasosParams::default());
        for (xi, &yi) in x.iter().zip(&y) {
            assert!(m.decision(xi) * yi > 0.0, "misclassified {xi:?}");
        }
    }

    #[test]
    fn pegasos_agrees_with_dual_coordinate_descent() {
        // Two independent optimizers of the same objective must produce
        // near-identical classifications (not identical weights — different
        // regularization paths — but the same sign pattern).
        let (x, y) = separable(60);
        let dual = train_binary_svm(&x, &y, &SvmTrainParams::default());
        let primal = train_pegasos(&x, &y, &PegasosParams::default());
        let mut agree = 0usize;
        let probe: Vec<Vec<f64>> =
            (0..100).map(|i| vec![(i % 10) as f64 / 10.0, (i / 10) as f64 / 10.0]).collect();
        for p in &probe {
            if (dual.decision(p) > 0.0) == (primal.decision(p) > 0.0) {
                agree += 1;
            }
        }
        assert!(agree >= 92, "solvers agree on only {agree}/100 probe points");
    }

    #[test]
    fn pegasos_is_deterministic() {
        let (x, y) = separable(30);
        let p = PegasosParams { iterations: 5_000, ..PegasosParams::default() };
        assert_eq!(train_pegasos(&x, &y, &p), train_pegasos(&x, &y, &p));
    }

    #[test]
    fn weight_norm_respects_projection_ball() {
        let (x, y) = separable(30);
        let p = PegasosParams { lambda: 0.01, iterations: 10_000, ..PegasosParams::default() };
        let m = train_pegasos(&x, &y, &p);
        let norm: f64 = m.weights().iter().map(|v| v * v).sum::<f64>().sqrt();
        assert!(norm <= 1.0 / p.lambda.sqrt() + 1e-9);
    }

    #[test]
    #[should_panic(expected = "±1")]
    fn rejects_bad_labels() {
        let _ = train_pegasos(&[vec![0.0]], &[0.5], &PegasosParams::default());
    }
}
