//! Export a generated sequential-SVM netlist as structural Verilog — the
//! artifact you would hand to a printed-electronics foundry flow (or a
//! commercial simulator) for sign-off.
//!
//! Run with: `cargo run --release --example verilog_export > seq_svm.v`

use printed_svm::core::designs::sequential;
use printed_svm::netlist::verilog;
use printed_svm::prelude::*;

fn main() {
    // A compact model so the Verilog stays human-readable: 4 features,
    // 3 classes.
    let spec = printed_svm::data::synth::SyntheticSpec {
        name: "mini".into(),
        n_samples: 300,
        n_features: 4,
        n_classes: 3,
        informative: 4,
        class_sep: 0.6,
        noise: 0.15,
        label_noise: 0.0,
        class_weights: vec![],
        geometry: printed_svm::data::synth::Geometry::Blobs,
    };
    let data = spec.generate(5);
    let (train, test) = train_test_split(&data, 0.2, 5);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let model = SvmModel::train(
        &train.quantize_inputs(4),
        MulticlassScheme::OneVsRest,
        &SvmTrainParams::default(),
    );
    let q = QuantizedSvm::quantize(&model, 4, 5);
    eprintln!("model accuracy: {:.0} %", q.accuracy(&test) * 100.0);

    let nl = sequential::build_sequential_ovr(&q);
    // Sign-off check before export: the netlist must match the golden model
    // on the held-out set (one batched simulation call).
    let mut sim = Simulator::new(&nl).expect("acyclic");
    let vectors: Vec<Vec<i64>> = test.features().iter().map(|x| q.quantize_input(x)).collect();
    let batch = sim.run_batch(&vectors, q.num_classes() as u64, "class");
    let mismatches = batch
        .outputs
        .iter()
        .zip(&vectors)
        .filter(|(&got, xq)| got as usize != q.predict_int(xq))
        .count();
    assert_eq!(mismatches, 0, "netlist must be bit-exact before export");
    eprintln!(
        "netlist: {} cells / {} FFs, verified on {} samples -> structural Verilog on stdout",
        nl.num_cells(),
        nl.num_seq_cells(),
        vectors.len()
    );
    print!("{}", verilog::to_verilog(&nl));
}
