//! Printed-yield study: inject stuck-at faults into a generated sequential
//! SVM and measure how many actually flip classifications — the robustness
//! argument for bespoke printed classifiers.
//!
//! Run with: `cargo run --release --example fault_injection`

use printed_svm::core::designs::sequential;
use printed_svm::prelude::*;
use printed_svm::sim::faults::{enumerate_fault_sites, fault_campaign_seq};

fn main() {
    // Train and quantize a small model.
    let data = UciProfile::Cardio.generate(7);
    let (train, test) = train_test_split(&data, 0.2, 7);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let model = SvmModel::train(
        &train.quantize_inputs(4),
        MulticlassScheme::OneVsRest,
        &SvmTrainParams::default(),
    );
    let q = QuantizedSvm::quantize(&model, 4, 5);
    let nl = sequential::build_sequential_ovr(&q);
    println!(
        "design: {} cells, {} candidate single-stuck-at faults",
        nl.num_cells(),
        2 * nl.num_cells()
    );

    // Sample fault sites (full campaigns scale linearly; sample for demo).
    let sites: Vec<_> = enumerate_fault_sites(&nl).into_iter().step_by(17).collect();
    let workload: Vec<Vec<(String, i64)>> = test
        .features()
        .iter()
        .take(20)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect();
    // Shard the campaign across the engine's thread helper and merge.
    let threads = printed_svm::core::engine::default_threads(sites.len());
    let shards: Vec<Vec<_>> =
        sites.chunks(sites.len().div_ceil(threads).max(1)).map(<[_]>::to_vec).collect();
    let partials = printed_svm::core::engine::parallel_map(&shards, threads, |shard| {
        fault_campaign_seq(&nl, shard, &workload, "class", q.num_classes() as u64)
            .expect("generated design is acyclic")
    });
    let report = partials.into_iter().fold(
        printed_svm::sim::FaultReport { critical: 0, benign: 0, total: 0 },
        |acc, r| printed_svm::sim::FaultReport {
            critical: acc.critical + r.critical,
            benign: acc.benign + r.benign,
            total: acc.total + r.total,
        },
    );
    println!(
        "campaign: {} faults x {} samples -> {} critical ({:.1} %), {} masked",
        report.total,
        workload.len(),
        report.critical,
        100.0 * report.criticality(),
        report.benign
    );
    println!(
        "\nReading: {:.0} % of sampled printing defects never change a prediction —\n\
         classification margins absorb them, which is how bespoke printed classifiers\n\
         live with printing yields that general-purpose logic could not.",
        100.0 * (1.0 - report.criticality())
    );
}
