//! Design-space exploration: sweep the sequential SVM's coefficient
//! precision and input precision on one dataset and print the
//! accuracy/area/energy trade-off — the §II quantization procedure made
//! visible.
//!
//! Run with: `cargo run --release --example design_space`

use printed_svm::core::designs::sequential;
use printed_svm::prelude::*;
use printed_svm::synth;

fn main() {
    // Train once at each input precision, then sweep weight width.
    let lib = EgfetLibrary::standard();
    let tech = TechParams::standard();
    let data = UciProfile::Cardio.generate(7);
    let (train, test) = train_test_split(&data, 0.2, 7);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));

    println!("| input bits | weight bits | accuracy (%) | cells | area (cm2) | freq (Hz) | energy proxy (mW*n/f) |");
    println!("|---|---|---|---|---|---|---|");
    for input_bits in [3u32, 4, 6] {
        let train_q = train.quantize_inputs(input_bits);
        let model =
            SvmModel::train(&train_q, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
        // The per-width evaluations are independent: fan them out over the
        // engine's thread helper (results stay in width order).
        let widths = [4u32, 5, 6, 8];
        let rows = printed_svm::core::engine::parallel_map(&widths, widths.len(), |&weight_bits| {
            let q = QuantizedSvm::quantize(&model, input_bits, weight_bits);
            let acc = q.accuracy(&test) * 100.0;
            let nl = sequential::build_sequential_ovr(&q);
            let area = synth::analyze_area(&nl, &lib);
            let timing = synth::analyze_timing(&nl, &lib, &tech).expect("acyclic");
            // Static-power proxy for energy (full activity extraction is done
            // by the main pipeline; this sweep stays fast).
            let activity = printed_svm::sim::ActivityReport::uniform(nl.num_nets(), 10, 0.2);
            let power =
                synth::analyze_power(&nl, &lib, &tech, &activity, timing.freq_hz).expect("acyclic");
            let n = q.num_classes() as f64;
            let energy_mj = power.total_mw * n * timing.clock_period_ms / 1000.0;
            format!(
                "| {} | {} | {:.1} | {} | {:.2} | {:.1} | {:.3} |",
                input_bits,
                weight_bits,
                acc,
                nl.num_cells(),
                area.total_cm2,
                timing.freq_hz,
                energy_mj
            )
        });
        for row in rows {
            println!("{row}");
        }
    }
    println!(
        "\nReading: accuracy saturates a couple of bits above the paper's chosen point;\n\
         area and energy keep growing with width — which is why §II searches for the\n\
         lowest precision that retains accuracy."
    );
}
