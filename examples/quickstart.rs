//! Quickstart: train a sequential printed SVM on one dataset, generate its
//! bespoke circuit, verify it against the integer golden model, and print
//! the paper's six hardware metrics.
//!
//! Run with: `cargo run --release --example quickstart`

use printed_svm::prelude::*;

fn main() {
    // 1. Pick a dataset profile (Cardio: 21 features, 3 classes) and run the
    //    whole pipeline through the experiment engine:
    //    train -> quantize -> elaborate -> verify -> analyze.
    let engine = ExperimentEngine::single(
        UciProfile::Cardio,
        DesignStyle::SequentialSvm,
        RunOptions::default(),
    );
    let mut table = engine.run();
    let report = table.rows.remove(0);

    println!("=== Sequential printed SVM on {} ===\n", report.dataset);
    println!(
        "accuracy      : {:.1} % (float model: {:.1} %)",
        report.accuracy_pct, report.float_accuracy_pct
    );
    println!(
        "area          : {:.2} cm2 ({} cells, {} flip-flops)",
        report.area_cm2, report.num_cells, report.num_ffs
    );
    println!(
        "power         : {:.2} mW ({:.2} static + {:.2} dynamic)",
        report.power_mw, report.static_mw, report.dynamic_mw
    );
    println!("clock         : {:.1} Hz", report.freq_hz);
    println!(
        "latency       : {:.1} ms ({} cycles, one support vector per cycle)",
        report.latency_ms, report.cycles
    );
    println!("energy        : {:.3} mJ per classification", report.energy_mj);
    println!(
        "precision     : {}-bit inputs, {}-bit weights (lowest-precision search)",
        report.input_bits, report.weight_bits
    );
    println!();
    println!(
        "gate-level verification: {} samples, {} mismatches vs integer golden model",
        report.verified_samples, report.mismatches
    );
    assert_eq!(report.mismatches, 0, "the circuit must be bit-exact");

    // 2. The Fig. 1 component breakdown.
    println!("\ncomponent breakdown:");
    for ((g, a), (_, p)) in report.group_area_cm2.iter().zip(&report.group_power_mw) {
        if *a > 0.0 || *p > 0.0 {
            println!("  {:<10} {:>7.3} cm2   {:>7.3} mW", g, a, p);
        }
    }

    // 3. Battery feasibility (the paper's headline constraint).
    let battery = Battery::molex_30mw();
    match battery.lifetime_hours(report.power_mw) {
        Some(h) => println!(
            "\n{}: powered, {:.1} h continuous, {:.0} classifications per charge",
            battery.name(),
            h,
            battery.classifications_per_charge(report.energy_mj)
        ),
        None => println!("\n{}: over budget!", battery.name()),
    }
}
