//! Bring-your-own-data: run the full printed-SVM flow on a dataset loaded
//! from CSV (here: generated on the fly to keep the example self-contained;
//! point `load_csv` at a real UCI file to reproduce with real data).
//!
//! Run with: `cargo run --release --example custom_dataset`

use printed_svm::core::designs::sequential;
use printed_svm::data::csv::parse_csv;
use printed_svm::prelude::*;
use printed_svm::synth;

fn main() {
    // A tiny 2-feature, 3-class dataset in the CSV format the loader
    // expects (label in the last column).
    let csv = "\
# toy sensor dataset: feature1, feature2, class
0.10,0.20,0\n0.15,0.25,0\n0.12,0.18,0\n0.08,0.22,0
0.80,0.20,1\n0.85,0.15,1\n0.78,0.25,1\n0.82,0.18,1
0.45,0.90,2\n0.50,0.85,2\n0.48,0.92,2\n0.55,0.88,2
0.13,0.21,0\n0.81,0.19,1\n0.52,0.87,2\n0.09,0.24,0
0.79,0.22,1\n0.47,0.89,2\n0.11,0.19,0\n0.84,0.17,1";
    let data = parse_csv("toy-sensor", csv).expect("well-formed CSV");
    println!(
        "loaded {}: {} samples, {} features, {} classes",
        data.name(),
        data.len(),
        data.num_features(),
        data.num_classes()
    );

    // The paper's protocol: normalize to [0,1], split, train at low input
    // precision, quantize to the lowest width that retains accuracy.
    let (train, test) = train_test_split(&data, 0.25, 42);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let train_q = train.quantize_inputs(4);
    let model = SvmModel::train(&train_q, MulticlassScheme::OneVsRest, &SvmTrainParams::default());
    let q = QuantizedSvm::quantize(&model, 4, 5);
    println!("quantized accuracy on held-out data: {:.0} %", q.accuracy(&test) * 100.0);

    // Elaborate the bespoke sequential circuit and inspect it.
    let nl = sequential::build_sequential_ovr(&q);
    nl.validate().expect("generated netlists are well-formed");
    println!(
        "circuit: {} cells ({} flip-flops), {} nets",
        nl.num_cells(),
        nl.num_seq_cells(),
        nl.num_nets()
    );
    let lib = EgfetLibrary::standard();
    let area = synth::analyze_area(&nl, &lib);
    println!("printed area: {:.2} cm2", area.total_cm2);

    // Classify the whole held-out set in one batched gate-level run.
    let mut sim = Simulator::new(&nl).expect("acyclic");
    let vectors: Vec<Vec<i64>> = test.features().iter().map(|x| q.quantize_input(x)).collect();
    let batch = sim.run_batch(&vectors, q.num_classes() as u64, "class");
    let mismatches = batch
        .outputs
        .iter()
        .zip(&vectors)
        .filter(|(&got, xq)| got as usize != q.predict_int(xq))
        .count();
    let (_, label) = test.sample(0);
    println!(
        "sample 0: circuit says class {}, golden model says {}, truth is {}",
        batch.outputs[0],
        q.predict_int(&vectors[0]),
        label
    );
    println!(
        "batched verification: {} samples in {} cycles, {} mismatches vs golden model",
        vectors.len(),
        batch.cycles,
        mismatches
    );
}
