//! Battery-life study: the paper's motivating scenario. Compares how long
//! each design style runs (and how many classifications it delivers) from
//! the printed-battery catalog, across all five datasets.
//!
//! Run with: `cargo run --release --example battery_life`

use printed_svm::prelude::*;

fn main() {
    let opts = RunOptions { max_sim_samples: 60, ..RunOptions::default() };
    let batteries = Battery::catalog();

    // One parallel engine run covers every (dataset, style) cell below —
    // including the punchline comparison, which reuses the same rows.
    let jobs: Vec<Job> = [UciProfile::Cardio, UciProfile::RedWine]
        .into_iter()
        .flat_map(|p| DesignStyle::all().into_iter().map(move |s| Job::new(p, s)))
        .collect();
    let table = ExperimentEngine::new(jobs, opts).run();

    println!("| dataset | design | power (mW) | energy (mJ) | battery | verdict | classifications/charge |");
    println!("|---|---|---|---|---|---|---|");
    for r in &table.rows {
        for b in &batteries {
            let (verdict, n) = match b.lifetime_hours(r.power_mw) {
                Some(_) => ("powered", format!("{:.0}", b.classifications_per_charge(r.energy_mj))),
                None => ("OVER BUDGET", "-".into()),
            };
            println!(
                "| {} | {} | {:.2} | {:.3} | {} | {} | {} |",
                r.dataset,
                r.style.label(),
                r.power_mw,
                r.energy_mj,
                b.name(),
                verdict,
                n
            );
        }
    }

    // The paper's punchline: the energy advantage is battery life.
    println!();
    let molex = Battery::molex_30mw();
    let ours = table.row("Cardio", DesignStyle::SequentialSvm).expect("in grid");
    let sota = table.row("Cardio", DesignStyle::ParallelSvm).expect("in grid");
    let ours_n = molex.classifications_per_charge(ours.energy_mj);
    println!(
        "Cardio on {}: ours delivers {:.0} classifications per charge; SVM [2] at {:.2} mW {}",
        molex.name(),
        ours_n,
        sota.power_mw,
        if sota.power_mw > molex.max_power_mw() {
            "cannot run from this battery at all".to_string()
        } else {
            format!(
                "delivers {:.0} ({:.1}x fewer)",
                molex.classifications_per_charge(sota.energy_mj),
                ours_n / molex.classifications_per_charge(sota.energy_mj)
            )
        }
    );
}
