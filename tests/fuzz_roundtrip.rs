//! Fuzz-style properties over random netlists: every generated design must
//! survive validation, sweeping, Verilog round-trip and co-simulation.
//!
//! Seeds sweep deterministically (the environment has no crates.io access,
//! so the `proptest` runner is replaced by explicit seed loops; failures
//! name the seed).

use printed_svm::netlist::testing::{random_netlist, RandomNetlistSpec};
use printed_svm::netlist::{opt, verilog, verilog_parse};
use printed_svm::prelude::*;

fn co_simulate(a: &Netlist, b: &Netlist, inputs: usize, ticks: usize, stimuli: u64) {
    let mut sa = Simulator::new(a).expect("acyclic");
    let mut sb = Simulator::new(b).expect("acyclic");
    for s in 0..stimuli {
        for i in 0..inputs {
            let v = ((s >> i) & 1) as i64;
            sa.set_input(&format!("i{i}"), v);
            sb.set_input(&format!("i{i}"), v);
        }
        for _ in 0..ticks {
            sa.tick();
            sb.tick();
        }
        for p in a.output_ports() {
            let name = p.name();
            assert_eq!(
                sa.output_unsigned(name),
                sb.output_unsigned(name),
                "output {name} diverged on stimulus {s}"
            );
        }
    }
}

/// Deterministic spread of 20 seeds across the 0..5000 space the old
/// proptest config explored.
fn seeds() -> impl Iterator<Item = u64> {
    (0..20u64).map(|i| (i * 251) % 5000)
}

/// Random netlists survive the Verilog export → import round trip with
/// identical behavior.
#[test]
fn verilog_round_trip_preserves_function() {
    for seed in seeds() {
        let spec = RandomNetlistSpec {
            inputs: 4,
            gates: 35,
            registers: 2,
            outputs: 3,
            ..RandomNetlistSpec::default()
        };
        let nl = random_netlist(&spec, seed);
        let text = verilog::to_verilog(&nl);
        let imported = verilog_parse::from_verilog(&text)
            .unwrap_or_else(|e| panic!("seed {seed}: {e}\n{text}"));
        imported.validate().unwrap();
        co_simulate(&nl, &imported, 4, 3, 16);
    }
}

/// The optimization sweep never changes behavior.
#[test]
fn sweep_preserves_function() {
    for seed in seeds() {
        let spec = RandomNetlistSpec {
            inputs: 4,
            gates: 35,
            registers: 2,
            outputs: 3,
            ..RandomNetlistSpec::default()
        };
        let nl = random_netlist(&spec, seed);
        let (swept, stats) = opt::sweep(&nl).unwrap();
        assert!(stats.cells_after <= stats.cells_before, "seed {seed}");
        co_simulate(&nl, &swept, 4, 3, 16);
    }
}

/// Stats, DOT export and STA never panic on any valid design.
#[test]
fn analyses_total_on_random_designs() {
    for seed in seeds() {
        let spec = RandomNetlistSpec {
            inputs: 3,
            gates: 25,
            registers: 1,
            outputs: 2,
            ..RandomNetlistSpec::default()
        };
        let nl = random_netlist(&spec, seed);
        let stats = printed_svm::netlist::stats::summarize(&nl).unwrap();
        assert_eq!(stats.cells, nl.num_cells(), "seed {seed}");
        let dot = printed_svm::netlist::dot::to_dot(&nl);
        assert!(dot.starts_with("digraph"), "seed {seed}");
        let lib = EgfetLibrary::standard();
        let tech = TechParams::standard();
        let t = printed_svm::synth::analyze_timing(&nl, &lib, &tech).unwrap();
        assert!(t.freq_hz > 0.0, "seed {seed}");
        let area = printed_svm::synth::analyze_area(&nl, &lib);
        assert!(area.total_cm2 >= 0.0, "seed {seed}");
    }
}
