//! Cross-crate integration tests: the full paper pipeline, run end to end.

use printed_svm::prelude::*;

fn fast_opts() -> RunOptions {
    RunOptions { max_sim_samples: 30, ..RunOptions::default() }
}

#[test]
fn sequential_svm_is_bit_exact_and_within_battery_budget() {
    let r = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
    assert_eq!(r.mismatches, 0, "gate-level circuit must match the golden model");
    assert!(r.verified_samples >= 30);
    let battery = Battery::molex_30mw();
    assert!(
        r.power_mw <= battery.max_power_mw(),
        "the paper's feasibility claim: sequential designs fit the 30 mW budget, got {} mW",
        r.power_mw
    );
}

#[test]
fn all_four_styles_verify_on_cardio() {
    for style in DesignStyle::all() {
        let r = run_experiment(UciProfile::Cardio, style, &fast_opts());
        assert_eq!(r.mismatches, 0, "{:?} disagreed with its golden model", style);
        assert!(r.accuracy_pct > 50.0, "{:?} accuracy collapsed: {}", style, r.accuracy_pct);
        assert!(r.area_cm2 > 0.0 && r.power_mw > 0.0 && r.energy_mj > 0.0);
    }
}

#[test]
fn sequential_latency_structure_matches_the_paper() {
    // latency = n_classes / f for ours; 1 / f for parallel designs (§III).
    let ours = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
    assert_eq!(ours.cycles, 3);
    assert!((ours.latency_ms - 3.0 * 1000.0 / ours.freq_hz).abs() < 1e-9);
    let sota = run_experiment(UciProfile::Cardio, DesignStyle::ParallelSvm, &fast_opts());
    assert_eq!(sota.cycles, 1);
    assert!((sota.latency_ms - 1000.0 / sota.freq_hz).abs() < 1e-9);
}

#[test]
fn sequential_clock_beats_parallel_clock() {
    // The paper's frequency story: the folded engine clocks at tens of Hz
    // while the deep parallel datapaths clock slower.
    let ours = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
    let sota = run_experiment(UciProfile::Cardio, DesignStyle::ParallelSvm, &fast_opts());
    let mlp = run_experiment(UciProfile::Cardio, DesignStyle::ParallelMlp, &fast_opts());
    assert!(ours.freq_hz > sota.freq_hz, "{} vs {}", ours.freq_hz, sota.freq_hz);
    assert!(sota.freq_hz > mlp.freq_hz, "{} vs {}", sota.freq_hz, mlp.freq_hz);
    // All in the printed regime: single-digit to tens of Hz.
    for f in [ours.freq_hz, sota.freq_hz, mlp.freq_hz] {
        assert!(f > 1.0 && f < 200.0, "frequency {f} outside the printed regime");
    }
}

#[test]
fn energy_headline_holds_on_cardio() {
    let ours = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
    for style in
        [DesignStyle::ParallelSvm, DesignStyle::ApproxParallelSvm, DesignStyle::ParallelMlp]
    {
        let base = run_experiment(UciProfile::Cardio, style, &fast_opts());
        assert!(
            ours.energy_mj < base.energy_mj,
            "ours {} mJ must beat {:?} {} mJ",
            ours.energy_mj,
            style,
            base.energy_mj
        );
    }
}

#[test]
fn group_breakdowns_sum_to_totals() {
    let r = run_experiment(UciProfile::Cardio, DesignStyle::SequentialSvm, &fast_opts());
    let area_sum: f64 = r.group_area_cm2.iter().map(|(_, a)| a).sum();
    assert!((area_sum - r.area_cm2).abs() < 1e-9);
    let power_sum: f64 = r.group_power_mw.iter().map(|(_, p)| p).sum();
    assert!((power_sum - r.power_mw).abs() < 1e-6);
    // Fig. 1 blocks all present and the engine dominates.
    let names: Vec<&str> = r.group_area_cm2.iter().map(|(g, _)| g.as_str()).collect();
    for g in ["control", "storage", "engine", "voter"] {
        assert!(names.contains(&g), "missing Fig. 1 block {g}");
    }
}

#[test]
fn seeds_change_data_but_not_conclusions() {
    let a = run_experiment(
        UciProfile::Cardio,
        DesignStyle::SequentialSvm,
        &RunOptions { seed: 7, max_sim_samples: 20, ..RunOptions::default() },
    );
    let b = run_experiment(
        UciProfile::Cardio,
        DesignStyle::SequentialSvm,
        &RunOptions { seed: 1234, max_sim_samples: 20, ..RunOptions::default() },
    );
    assert_eq!(a.mismatches, 0);
    assert_eq!(b.mismatches, 0);
    // Different seeds give different models but the same regime.
    assert!((a.accuracy_pct - b.accuracy_pct).abs() < 15.0);
    assert!(b.power_mw < 30.0);
}
