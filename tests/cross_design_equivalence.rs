//! Functional-equivalence tests across independent hardware realizations:
//! the same quantized OvR model implemented (a) as the paper's sequential
//! circuit, (b) as a fully-parallel circuit, and (c) as the integer golden
//! model must agree on every prediction. Two structurally unrelated
//! netlists agreeing with each other is a much stronger check than either
//! one agreeing with the software model alone.

use printed_svm::core::designs::{parallel, sequential};
use printed_svm::prelude::*;

fn quantized_ovr(profile: UciProfile, seed: u64) -> (QuantizedSvm, Dataset) {
    let d = profile.generate(seed);
    let (train, test) = train_test_split(&d, 0.2, seed);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let sub: Vec<usize> = (0..train.len().min(350)).collect();
    let p = SvmTrainParams { max_epochs: 35, ..SvmTrainParams::default() };
    let model = SvmModel::train(
        &train.subset(&sub, "-s").quantize_inputs(4),
        MulticlassScheme::OneVsRest,
        &p,
    );
    (QuantizedSvm::quantize(&model, 4, 6), test)
}

fn run_sequential(nl: &Netlist, q: &QuantizedSvm, x_q: &[i64]) -> usize {
    let mut sim = Simulator::new(nl).expect("acyclic");
    for (i, &v) in x_q.iter().enumerate() {
        sim.set_input(&format!("x{i}"), v);
    }
    for _ in 0..q.num_classes() {
        sim.tick();
    }
    sim.output_unsigned("class") as usize
}

fn run_parallel(nl: &Netlist, x_q: &[i64]) -> usize {
    let mut sim = Simulator::new(nl).expect("acyclic");
    for (i, &v) in x_q.iter().enumerate() {
        sim.set_input(&format!("x{i}"), v);
    }
    sim.eval_comb();
    sim.output_unsigned("class") as usize
}

#[test]
fn three_way_agreement_on_cardio() {
    let (q, test) = quantized_ovr(UciProfile::Cardio, 99);
    let seq_nl = sequential::build_sequential_ovr(&q);
    let par_nl = parallel::build_parallel_svm(&q);
    for (i, x) in test.features().iter().take(40).enumerate() {
        let x_q = q.quantize_input(x);
        let golden = q.predict_int(&x_q);
        let s = run_sequential(&seq_nl, &q, &x_q);
        let p = run_parallel(&par_nl, &x_q);
        assert_eq!(s, golden, "sequential vs golden, sample {i}");
        assert_eq!(p, golden, "parallel vs golden, sample {i}");
    }
}

#[test]
fn three_way_agreement_on_dermatology_six_classes() {
    let (q, test) = quantized_ovr(UciProfile::Dermatology, 101);
    let seq_nl = sequential::build_sequential_ovr(&q);
    let par_nl = parallel::build_parallel_svm(&q);
    for (i, x) in test.features().iter().take(25).enumerate() {
        let x_q = q.quantize_input(x);
        let golden = q.predict_int(&x_q);
        assert_eq!(run_sequential(&seq_nl, &q, &x_q), golden, "sequential, sample {i}");
        assert_eq!(run_parallel(&par_nl, &x_q), golden, "parallel, sample {i}");
    }
}

#[test]
fn equivalence_survives_adversarial_inputs() {
    // Extreme corners: all-zero, all-max, alternating — inputs that stress
    // saturation paths and the voter's tie handling.
    let (q, _) = quantized_ovr(UciProfile::Cardio, 103);
    let seq_nl = sequential::build_sequential_ovr(&q);
    let par_nl = parallel::build_parallel_svm(&q);
    let m = q.num_features();
    let max = 15i64; // 4-bit inputs
    let corners: Vec<Vec<i64>> = vec![
        vec![0; m],
        vec![max; m],
        (0..m).map(|i| if i % 2 == 0 { max } else { 0 }).collect(),
        (0..m).map(|i| (i as i64) % (max + 1)).collect(),
        (0..m).map(|i| max - (i as i64) % (max + 1)).collect(),
    ];
    for (i, x_q) in corners.iter().enumerate() {
        let golden = q.predict_int(x_q);
        assert_eq!(run_sequential(&seq_nl, &q, x_q), golden, "corner {i}");
        assert_eq!(run_parallel(&par_nl, x_q), golden, "corner {i}");
    }
}

#[test]
fn sequential_is_smaller_parallel_is_faster_per_inference() {
    // The architectural trade the paper folds on.
    let (q, _) = quantized_ovr(UciProfile::Dermatology, 105);
    let seq_nl = sequential::build_sequential_ovr(&q);
    let par_nl = parallel::build_parallel_svm(&q);
    assert!(
        seq_nl.num_cells() < par_nl.num_cells(),
        "folded engine {} cells must be smaller than parallel {} cells (6 classes)",
        seq_nl.num_cells(),
        par_nl.num_cells()
    );
    let lib = EgfetLibrary::standard();
    let tech = TechParams::standard();
    let seq_t = printed_svm::synth::analyze_timing(&seq_nl, &lib, &tech).unwrap();
    let par_t = printed_svm::synth::analyze_timing(&par_nl, &lib, &tech).unwrap();
    let seq_latency = 6.0 * seq_t.clock_period_ms;
    let par_latency = par_t.clock_period_ms;
    assert!(
        par_latency < seq_latency,
        "single-cycle parallel ({par_latency} ms) should be faster per inference than 6-cycle sequential ({seq_latency} ms)"
    );
}
