//! Integration tests for the import/export and robustness tooling on real
//! generated classifier circuits.

use printed_svm::core::designs::{parallel, sequential};
use printed_svm::netlist::{verilog, verilog_parse};
use printed_svm::prelude::*;
use printed_svm::sim::faults::{enumerate_fault_sites, fault_campaign_comb, fault_campaign_seq};

fn quantized(profile: UciProfile, scheme: MulticlassScheme) -> (QuantizedSvm, Dataset) {
    let d = profile.generate(77);
    let (train, test) = train_test_split(&d, 0.2, 77);
    let norm = Normalizer::fit(&train);
    let (train, test) = (norm.apply(&train), norm.apply(&test));
    let sub: Vec<usize> = (0..train.len().min(300)).collect();
    let p = SvmTrainParams { max_epochs: 30, ..SvmTrainParams::default() };
    let m = SvmModel::train(&train.subset(&sub, "-s").quantize_inputs(4), scheme, &p);
    (QuantizedSvm::quantize(&m, 4, 5), test)
}

#[test]
fn sequential_svm_survives_verilog_round_trip() {
    let (q, test) = quantized(UciProfile::Cardio, MulticlassScheme::OneVsRest);
    let original = sequential::build_sequential_ovr(&q);
    let text = verilog::to_verilog(&original);
    let imported = verilog_parse::from_verilog(&text).expect("emitted subset must re-parse");
    imported.validate().unwrap();
    // Functional equivalence over real samples, on both netlists.
    let mut sim_a = Simulator::new(&original).unwrap();
    let mut sim_b = Simulator::new(&imported).unwrap();
    let n = q.num_classes();
    for x in test.features().iter().take(20) {
        let x_q = q.quantize_input(x);
        for (i, &v) in x_q.iter().enumerate() {
            sim_a.set_input(&format!("x{i}"), v);
            sim_b.set_input(&format!("x{i}"), v);
        }
        for _ in 0..n {
            sim_a.tick();
            sim_b.tick();
        }
        assert_eq!(
            sim_a.output_unsigned("class"),
            sim_b.output_unsigned("class"),
            "round-tripped netlist diverged"
        );
    }
}

#[test]
fn parallel_svm_survives_verilog_round_trip() {
    let (q, test) = quantized(UciProfile::Cardio, MulticlassScheme::OneVsOne);
    let original = parallel::build_parallel_svm(&q);
    let imported = verilog_parse::from_verilog(&verilog::to_verilog(&original)).expect("re-parse");
    let mut sim_a = Simulator::new(&original).unwrap();
    let mut sim_b = Simulator::new(&imported).unwrap();
    for x in test.features().iter().take(20) {
        let x_q = q.quantize_input(x);
        for (i, &v) in x_q.iter().enumerate() {
            sim_a.set_input(&format!("x{i}"), v);
            sim_b.set_input(&format!("x{i}"), v);
        }
        sim_a.eval_comb();
        sim_b.eval_comb();
        assert_eq!(sim_a.output_unsigned("class"), sim_b.output_unsigned("class"));
    }
}

#[test]
fn classifiers_mask_a_good_fraction_of_faults() {
    // The printed-yield story: many stuck-at defects never flip a
    // prediction, on both architectures.
    let (q, test) = quantized(UciProfile::Cardio, MulticlassScheme::OneVsRest);
    let workload: Vec<Vec<(String, i64)>> = test
        .features()
        .iter()
        .take(12)
        .map(|x| {
            q.quantize_input(x).iter().enumerate().map(|(i, &v)| (format!("x{i}"), v)).collect()
        })
        .collect();

    let seq_nl = sequential::build_sequential_ovr(&q);
    let seq_sites: Vec<_> = enumerate_fault_sites(&seq_nl).into_iter().step_by(23).collect();
    let seq_report =
        fault_campaign_seq(&seq_nl, &seq_sites, &workload, "class", q.num_classes() as u64)
            .unwrap();
    assert!(seq_report.total > 20);
    assert!(
        seq_report.benign > 0 && seq_report.critical > 0,
        "expected a mix of masked and critical faults: {seq_report:?}"
    );

    let par_nl = parallel::build_parallel_svm(&q);
    let par_sites: Vec<_> = enumerate_fault_sites(&par_nl).into_iter().step_by(31).collect();
    let par_report = fault_campaign_comb(&par_nl, &par_sites, &workload, "class").unwrap();
    assert!(par_report.benign > 0 && par_report.critical > 0, "{par_report:?}");
    // Neither architecture is catastrophically fragile on this workload.
    assert!(seq_report.criticality() < 0.9);
    assert!(par_report.criticality() < 0.9);
}

#[test]
fn netlist_sweep_preserves_generated_design_behavior() {
    let (q, test) = quantized(UciProfile::Cardio, MulticlassScheme::OneVsRest);
    let nl = sequential::build_sequential_ovr(&q);
    let (swept, stats) = printed_svm::netlist::opt::sweep(&nl).unwrap();
    swept.validate().unwrap();
    assert!(stats.cells_after <= stats.cells_before);
    let mut sim_a = Simulator::new(&nl).unwrap();
    let mut sim_b = Simulator::new(&swept).unwrap();
    let n = q.num_classes();
    for x in test.features().iter().take(15) {
        let x_q = q.quantize_input(x);
        for (i, &v) in x_q.iter().enumerate() {
            sim_a.set_input(&format!("x{i}"), v);
            sim_b.set_input(&format!("x{i}"), v);
        }
        for _ in 0..n {
            sim_a.tick();
            sim_b.tick();
        }
        assert_eq!(sim_a.output_unsigned("class"), sim_b.output_unsigned("class"));
    }
}
