//! Property-based hardware tests: randomized models and inputs driven
//! through generated netlists must always agree with integer reference
//! arithmetic. These catch width-derivation and signedness bugs that
//! hand-picked cases miss.
//!
//! Cases are generated from seeded loops (the environment has no crates.io
//! access, so the `proptest` runner is replaced by explicit deterministic
//! sweeps; every failure message carries the seed to reproduce it).

use printed_svm::core::designs::sequential;
use printed_svm::netlist::{Builder, Word};
use printed_svm::prelude::*;
use printed_svm::synth::{adder, cmp, mult, mux, tree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds a QuantizedSvm directly from randomized integer tables (bypassing
/// training) so properties explore the full coefficient space.
fn svm_from_tables(weights: Vec<Vec<i64>>, biases: Vec<i64>, input_bits: u32) -> QuantizedSvm {
    // Recover a float model on the weight grid and re-quantize: the public
    // API quantizes trained models, so feed it synthetic "trained" floats.
    use printed_svm::ml::linear::LinearModel;
    let frac = 6i32;
    let scale = (2.0f64).powi(-frac);
    let classifiers: Vec<LinearModel> = weights
        .iter()
        .zip(&biases)
        .map(|(ws, &b)| {
            let levels = f64::from((1u32 << input_bits) - 1);
            LinearModel::new(
                ws.iter().map(|&w| w as f64 * scale).collect(),
                b as f64 * scale / levels,
            )
        })
        .collect();
    let model = SvmModel::from_ovr(classifiers);
    QuantizedSvm::quantize(&model, input_bits, 8)
}

/// The sequential circuit equals the golden model for arbitrary small
/// models and arbitrary inputs.
#[test]
fn sequential_circuit_matches_golden() {
    for seed in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5e9_0001);
        let n_classes = rng.gen_range(2usize..5);
        let m = rng.gen_range(1usize..6);
        let weights: Vec<Vec<i64>> =
            (0..n_classes).map(|_| (0..m).map(|_| rng.gen_range(-31i64..32)).collect()).collect();
        let biases: Vec<i64> = (0..n_classes).map(|_| rng.gen_range(-200i64..200)).collect();
        let q = svm_from_tables(weights, biases, 4);
        let nl = sequential::build_sequential_ovr(&q);
        nl.validate().unwrap();
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..6 {
            let x_q: Vec<i64> = (0..m).map(|_| rng.gen_range(0i64..16)).collect();
            for (i, &v) in x_q.iter().enumerate() {
                sim.set_input(&format!("x{i}"), v);
            }
            for _ in 0..n_classes {
                sim.tick();
            }
            assert_eq!(
                sim.output_unsigned("class") as usize,
                q.predict_int(&x_q),
                "model seed {seed}"
            );
        }
    }
}

/// Generic multipliers are exact for random widths and signedness.
#[test]
fn random_width_multipliers_are_exact() {
    for seed in 0u64..24 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9e37_79b9) ^ 0x4d55);
        let wx = rng.gen_range(1usize..6);
        let wy = rng.gen_range(1usize..6);
        let sx: bool = rng.gen();
        let sy: bool = rng.gen();
        let mut b = Builder::new("m");
        let x = Word::new(b.input_bus("x", wx), sx);
        let y = Word::new(b.input_bus("y", wy), sy);
        let p = mult::mul_generic(&mut b, &x, &y);
        let signed_out = p.is_signed();
        b.output_bus("p", p.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..12 {
            let vx = if sx {
                rng.gen_range(-(1i64 << (wx - 1))..(1i64 << (wx - 1)))
            } else {
                rng.gen_range(0..(1i64 << wx))
            };
            let vy = if sy {
                rng.gen_range(-(1i64 << (wy - 1))..(1i64 << (wy - 1)))
            } else {
                rng.gen_range(0..(1i64 << wy))
            };
            sim.set_input("x", vx);
            sim.set_input("y", vy);
            sim.eval_comb();
            let got = if signed_out { sim.output_signed("p") } else { sim.output_unsigned("p") };
            assert_eq!(got, vx * vy, "seed {seed} wx={wx} wy={wy} sx={sx} sy={sy}");
        }
    }
}

/// Constant multipliers agree with generic multiplication for any constant.
#[test]
fn const_mult_matches_reference() {
    let mut rng = StdRng::seed_from_u64(0xC0457);
    // The stepped grid plus the CSD special cases (0, ±1) and the endpoints.
    let constants = (-200i64..=200).step_by(7).chain([-200, -1, 0, 1, 200]);
    for c in constants {
        let mut b = Builder::new("mc");
        let x = Word::new(b.input_bus("x", 5), false);
        let p = mult::mul_const(&mut b, &x, c);
        let signed_out = p.is_signed();
        b.output_bus("p", p.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for _ in 0..8 {
            let vx = rng.gen_range(0i64..32);
            sim.set_input("x", vx);
            sim.eval_comb();
            let got = if signed_out { sim.output_signed("p") } else { sim.output_unsigned("p") };
            assert_eq!(got, vx * c, "constant {c}");
        }
    }
}

/// ROM tables always return exactly the stored entry.
#[test]
fn rom_mux_returns_entries() {
    let mut rng = StdRng::seed_from_u64(0x20);
    for case in 0..24 {
        let len = rng.gen_range(1usize..12);
        let table: Vec<i64> = (0..len).map(|_| rng.gen_range(-500i64..500)).collect();
        let mut b = Builder::new("rom");
        let sel_w = (usize::BITS - (table.len().max(2) - 1).leading_zeros()) as usize;
        let sel = Word::new(b.input_bus("sel", sel_w), false);
        let out = mux::rom_mux(&mut b, &sel, &table);
        let signed_out = out.is_signed();
        b.output_bus("out", out.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, &want) in table.iter().enumerate() {
            sim.set_input("sel", i as i64);
            sim.eval_comb();
            let got =
                if signed_out { sim.output_signed("out") } else { sim.output_unsigned("out") };
            assert_eq!(got, want, "case {case} entry {i}");
        }
    }
}

/// Tree and chain accumulation compute identical sums (they differ only in
/// depth, which is the baselines' timing story).
#[test]
fn tree_equals_chain() {
    let mut rng = StdRng::seed_from_u64(0x7ee);
    for case in 0..24 {
        let len = rng.gen_range(2usize..10);
        let values: Vec<i64> = (0..len).map(|_| rng.gen_range(-15i64..16)).collect();
        let mut b = Builder::new("agree");
        let words: Vec<Word> =
            (0..values.len()).map(|i| Word::new(b.input_bus(format!("i{i}"), 5), true)).collect();
        let t = tree::sum_tree(&mut b, &words);
        let ch = tree::sum_chain(&mut b, &words);
        let diff_is_zero = {
            let d = adder::sub_exact(&mut b, &t, &ch);
            cmp::eq_const(&mut b, &d, 0)
        };
        b.output("same", diff_is_zero);
        b.output_bus("t", t.bits());
        let nl = b.finish();
        let mut sim = Simulator::new(&nl).unwrap();
        for (i, &v) in values.iter().enumerate() {
            sim.set_input(&format!("i{i}"), v);
        }
        sim.eval_comb();
        assert_eq!(sim.output_unsigned("same"), 1, "case {case}");
        assert_eq!(sim.output_signed("t"), values.iter().sum::<i64>(), "case {case}");
    }
}
