//! Integration tests for the shared experiment engine: determinism under
//! parallelism, equivalence with the single-job entry point, and model
//! memoization across jobs and PDK variants.

use printed_svm::prelude::*;

fn grid_opts() -> RunOptions {
    // Few simulated samples: training still dominates, and determinism must
    // hold for any sample count.
    RunOptions { max_sim_samples: 12, ..RunOptions::default() }
}

#[test]
fn full_table1_grid_is_bit_identical_serial_vs_parallel() {
    let serial = ExperimentEngine::table1_grid(grid_opts()).with_threads(1).run();
    let parallel = ExperimentEngine::table1_grid(grid_opts()).with_threads(4).run();
    assert_eq!(serial.rows.len(), 20, "5 datasets x 4 styles");
    assert_eq!(parallel.rows.len(), 20);
    for (s, p) in serial.rows.iter().zip(&parallel.rows) {
        assert_eq!(s, p, "row diverged between 1-thread and 4-thread runs");
    }
    // Grid order is the paper's: dataset-major, baselines first, ours last.
    assert_eq!(serial.rows[0].dataset, "Cardio");
    assert_eq!(serial.rows[3].style, DesignStyle::SequentialSvm);
    // Every verified cell matches its golden model.
    for r in &serial.rows {
        assert_eq!(r.mismatches, 0, "{} / {:?}", r.dataset, r.style);
    }
}

#[test]
fn engine_reproduces_run_experiment_exactly() {
    let opts = grid_opts();
    let engine =
        ExperimentEngine::single(UciProfile::Dermatology, DesignStyle::SequentialSvm, opts.clone());
    let from_engine = engine.run().rows.pop().expect("one row");
    let direct = run_experiment(UciProfile::Dermatology, DesignStyle::SequentialSvm, &opts);
    assert_eq!(from_engine, direct);
}

#[test]
fn models_are_memoized_across_duplicate_jobs_and_pdk_variants() {
    let jobs = vec![
        Job::new(UciProfile::Cardio, DesignStyle::SequentialSvm),
        Job::new(UciProfile::Cardio, DesignStyle::ParallelSvm),
        // Duplicates of both cells: must not retrain.
        Job::new(UciProfile::Cardio, DesignStyle::SequentialSvm),
        Job::new(UciProfile::Cardio, DesignStyle::ParallelSvm),
    ];
    let engine = ExperimentEngine::new(jobs, grid_opts()).with_threads(4);
    let table = engine.run();
    assert_eq!(table.rows.len(), 4);
    assert_eq!(engine.trainings(), 2, "one training per distinct (profile, style)");
    assert_eq!(table.rows[0], table.rows[2], "duplicate jobs produce identical reports");
    assert_eq!(table.rows[1], table.rows[3]);

    // A PDK variant re-runs only the hardware half.
    let softer = EgfetLibrary::scaled(1.0, 1.0, 0.5, 1.0);
    let variant = engine.run_with_pdk(&softer, &TechParams::standard());
    assert_eq!(engine.trainings(), 2, "PDK sweep must reuse trained models");
    // Halving switching energy must lower dynamic power, never accuracy.
    for (base, var) in table.rows.iter().zip(&variant.rows) {
        assert_eq!(base.accuracy_pct, var.accuracy_pct);
        assert!(var.dynamic_mw < base.dynamic_mw);
    }
}

#[test]
fn streaming_sink_reports_every_grid_cell() {
    struct Collect(Vec<String>);
    impl ReportSink for Collect {
        fn on_report(&mut self, job: Job, report: &DesignReport) {
            assert_eq!(report.dataset, job.profile.name());
            self.0.push(format!("{}/{:?}", report.dataset, job.style));
        }
    }
    let jobs: Vec<Job> =
        DesignStyle::all().into_iter().map(|s| Job::new(UciProfile::Cardio, s)).collect();
    let engine = ExperimentEngine::new(jobs, grid_opts()).with_threads(2);
    let mut sink = Collect(Vec::new());
    let table = engine.run_streaming(&mut sink);
    assert_eq!(sink.0.len(), table.rows.len());
    // Completion order may differ from grid order, but the set must match.
    let mut streamed = sink.0.clone();
    streamed.sort();
    let mut expected: Vec<String> =
        table.rows.iter().map(|r| format!("{}/{:?}", r.dataset, r.style)).collect();
    expected.sort();
    assert_eq!(streamed, expected);
}
