//! **printed-svm** — energy-efficient printed machine-learning classifiers
//! with sequential SVMs.
//!
//! A full-stack Rust reproduction of *"Late Breaking Results:
//! Energy-Efficient Printed Machine Learning Classifiers with Sequential
//! SVMs"* (DATE 2025, arXiv:2501.16828): from SVM/MLP training and
//! post-training quantization, through bespoke gate-level circuit
//! generation, to an EGFET printed-electronics synthesis/timing/power flow
//! that regenerates the paper's Table I and every derived claim.
//!
//! This crate is a facade: it re-exports the workspace's layers under one
//! roof. See the individual crates for depth:
//!
//! | Layer | Crate | Contents |
//! |---|---|---|
//! | numerics | [`fixed`] | fixed-point, quantization, CSD, precision search |
//! | data | [`data`] | UCI-shaped synthetic datasets, CSV, splits, metrics |
//! | learning | [`ml`] | linear SVMs (OvR/OvO), MLPs, integer-exact quantized models |
//! | circuits | [`netlist`] | gate-level IR, folding builder, Verilog export |
//! | static analysis | [`lint`] | structural lints, constant propagation, fault collapsing |
//! | PDK | [`cells`] | EGFET cell library, tech params, printed batteries |
//! | EDA flow | [`synth`] | datapath generators, STA, area, power |
//! | simulation | [`sim`] | cycle-based gate-level simulator, activity |
//! | the paper | [`core`] | sequential SVM + baselines + pipeline + claims |
//! | observability | [`obs`] | windowed metrics, request tracing, simulator profiling hooks |
//! | serving | [`serve`] | batch-coalescing classification service + TCP front end |
//!
//! # Quickstart
//!
//! ```no_run
//! use printed_svm::prelude::*;
//!
//! // Reproduce one Table-I row: the sequential SVM on Cardio.
//! let report = run_experiment(
//!     UciProfile::Cardio,
//!     DesignStyle::SequentialSvm,
//!     &RunOptions::default(),
//! );
//! println!("{}", report.one_line());
//! assert_eq!(report.mismatches, 0); // gate-level == integer golden model
//! ```
//!
//! Grid runs go through the shared parallel engine — one trained model per
//! `(dataset, style)` pair, jobs fanned out over scoped threads:
//!
//! ```no_run
//! use printed_svm::prelude::*;
//!
//! let engine = ExperimentEngine::table1_grid(RunOptions::default()).with_threads(4);
//! let table = engine.run();
//! println!("{}", table.to_markdown());
//! ```

pub use pe_cells as cells;
pub use pe_core as core;
pub use pe_data as data;
pub use pe_fixed as fixed;
pub use pe_lint as lint;
pub use pe_ml as ml;
pub use pe_netlist as netlist;
pub use pe_obs as obs;
pub use pe_serve as serve;
pub use pe_sim as sim;
pub use pe_synth as synth;

/// The most common imports, for examples and quick scripts.
pub mod prelude {
    pub use pe_cells::{Battery, EgfetLibrary, TechParams};
    pub use pe_core::engine::{ExperimentEngine, Job, ProgressSink, ReportSink};
    pub use pe_core::pipeline::{
        build_netlist, cycles_per_inference, prepare_model, run_experiment, run_prepared, Prepared,
        PreparedModel, RunOptions,
    };
    pub use pe_core::report::{paper_table1, DesignReport, Table1};
    pub use pe_core::styles::DesignStyle;
    pub use pe_data::{train_test_split, Dataset, Normalizer, UciProfile};
    pub use pe_lint::{collapse_fault_sites, lint_netlist, Lint, LintReport, Severity};
    pub use pe_ml::linear::SvmTrainParams;
    pub use pe_ml::multiclass::{MulticlassScheme, SvmModel};
    pub use pe_ml::{QuantizedMlp, QuantizedSvm};
    pub use pe_netlist::{Builder, Netlist, Word};
    pub use pe_serve::{ModelKey, ModelRegistry, ServeMode, Service, ServiceConfig};
    pub use pe_sim::{Schedule, Simulator};
}
